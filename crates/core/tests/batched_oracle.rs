//! End-to-end contracts of the batched oracle layer, exercised through the
//! public `Session`/`Explainer` surface rather than the `ShardedOracle`
//! unit tests:
//!
//! * batched answers are byte-identical to the unbatched path at 1/2/4/8
//!   threads, for both the exact constraint solver and the sampled masked
//!   cell game;
//! * `OracleStats` is scheduling-independent — the same counters at every
//!   batch size and thread count;
//! * a zero-latency `MockRemoteRepair` backend reproduces the inline path
//!   exactly, and single-flight dedup holds through the full game path
//!   (the remote answers each distinct coalition exactly once);
//! * the work-stealing walk schedule stays bit-identical to serial while
//!   its coalition values flow through batches.

use std::time::Duration;
use trex::{ExecConfig, Explainer, MaskMode, Session};
use trex_datagen::laliga;
use trex_repair::MockRemoteRepair;
use trex_shapley::{SamplingConfig, Schedule};

fn session(cfg: ExecConfig) -> Session {
    Session::new(
        Box::new(laliga::algorithm1()),
        laliga::dirty_table(),
        laliga::constraints(),
    )
    .with_config(cfg)
}

#[test]
fn batched_answers_are_byte_identical_to_unbatched_at_any_thread_count() {
    let sampling = SamplingConfig {
        samples: 300,
        seed: 9,
    };
    let reference = session(ExecConfig::new());
    let cell = laliga::cell_of_interest(reference.table());
    let (want_cons, want_stats) = reference.explain_constraints_with_stats(cell).unwrap();
    for threads in [1usize, 2, 4, 8] {
        for batch in [1usize, 3, 64] {
            let plain = session(ExecConfig::new().with_threads(threads));
            let batched = session(
                ExecConfig::new()
                    .with_threads(threads)
                    .with_oracle_batch(batch),
            );
            // Exact constraint solver: identical to the global serial
            // reference, and the cache counters don't budge either —
            // batching only regroups misses, it never creates or hides one.
            let (cons, stats) = batched.explain_constraints_with_stats(cell).unwrap();
            assert_eq!(
                cons.exact, want_cons.exact,
                "threads {threads}, batch {batch}"
            );
            assert_eq!(stats, want_stats, "threads {threads}, batch {batch}");
            // Sampled masked cells: batched equals unbatched at the same
            // (seed, threads) pair, bit for bit.
            let want = plain
                .explain_cells_masked(cell, MaskMode::Null, sampling)
                .unwrap();
            let got = batched
                .explain_cells_masked(cell, MaskMode::Null, sampling)
                .unwrap();
            assert_eq!(got.values, want.values, "threads {threads}, batch {batch}");
            assert_eq!(got.target, want.target);
        }
    }
}

#[test]
fn zero_latency_remote_backend_reproduces_the_inline_path() {
    let alg = laliga::algorithm1();
    let table = laliga::dirty_table();
    let dcs = laliga::constraints();
    let cell = laliga::cell_of_interest(&table);
    let want = Explainer::new(&alg)
        .explain_constraints(&dcs, &table, cell)
        .unwrap();
    let remote = MockRemoteRepair::mock(laliga::algorithm1(), Duration::ZERO);
    let explainer = Explainer::new(&alg)
        .with_config(ExecConfig::new().with_oracle_batch(4))
        .with_oracle_backend(&remote);
    let (cons, stats, batches) = explainer
        .explain_constraints_with_batch_stats(&dcs, &table, cell)
        .unwrap();
    assert_eq!(cons.exact, want.exact);
    // Every cache miss went over the wire, nothing else did: single-flight
    // and the memo dedup upstream of the transport, so the remote answered
    // each distinct coalition exactly once.
    assert_eq!(remote.queries(), stats.misses);
    assert_eq!(batches.queries, stats.misses);
    assert_eq!(batches.batches, stats.misses.div_ceil(4));
    assert_eq!(remote.calls(), batches.batches);
}

#[test]
fn remote_backed_session_matches_the_plain_session_on_cells() {
    let sampling = SamplingConfig {
        samples: 200,
        seed: 5,
    };
    let plain = session(ExecConfig::new().with_threads(2));
    let remote =
        session(ExecConfig::new().with_threads(2).with_oracle_batch(8)).with_oracle_backend(
            Box::new(MockRemoteRepair::mock(laliga::algorithm1(), Duration::ZERO)),
        );
    let cell = laliga::cell_of_interest(plain.table());
    let want = plain
        .explain_cells_masked(cell, MaskMode::Null, sampling)
        .unwrap();
    let got = remote
        .explain_cells_masked(cell, MaskMode::Null, sampling)
        .unwrap();
    assert_eq!(got.values, want.values);
    assert_eq!(
        remote.oracle_backend().unwrap().name(),
        "remote(algorithm1)"
    );
}

#[test]
fn stealing_walk_over_batches_stays_bit_identical_to_serial() {
    let sampling = SamplingConfig {
        samples: 128,
        seed: 11,
    };
    let serial = session(ExecConfig::new());
    let cell = laliga::cell_of_interest(serial.table());
    let want = serial
        .explain_cells_masked(cell, MaskMode::Null, sampling)
        .unwrap();
    for threads in [1usize, 2, 4, 8] {
        let stealing = session(
            ExecConfig::new()
                .with_threads(threads)
                .with_schedule(Schedule::WorkStealing)
                .with_oracle_batch(16),
        );
        let got = stealing
            .explain_cells_masked(cell, MaskMode::Null, sampling)
            .unwrap();
        assert_eq!(got.values, want.values, "threads {threads}");
    }
}
