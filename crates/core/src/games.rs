//! The two cooperative games of the paper (§2.2).
//!
//! Both games share the same characteristic function skeleton: query the
//! black-box repair algorithm and report whether the user's cell of interest
//! gets repaired to its clean value.
//!
//! * [`ConstraintGame`] — players are the denial constraints; a coalition
//!   `S ⊆ C` evaluates `Alg|t[A](S, T^d)` with the table fixed. Solved
//!   exactly (few players).
//! * [`CellGameMasked`] — players are the table cells (except the cell of
//!   interest, which always keeps its dirty value — it is the subject of
//!   the game, not a participant); a coalition `S ⊆ T^d` evaluates
//!   `Alg|t[A](C, S)` where every cell outside `S` is masked. Two masking
//!   semantics are provided (see [`MaskMode`]).
//! * [`CellGameSampled`] — the sampling variant of Example 2.5: cells
//!   outside the coalition are replaced by *random draws from their column
//!   distribution* rather than masked, with common random numbers between
//!   the `v(S ∪ {i})` / `v(S)` pair.
//!
//! All three games are `Sync` (the `Game`/`StochasticGame` traits demand
//! it), so the parallel sampling engine's workers can evaluate one shared
//! game. [`ConstraintGame`] and [`CellGameMasked`] memoize through
//! `trex_repair::ShardedOracle` and share cache hits across workers;
//! [`CellGameSampled`] is stateless — replacement tables are fresh draws,
//! so there is nothing to cache and every sample pays a full repair.

use rand::RngCore;
use std::borrow::Cow;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use trex_constraints::DenialConstraint;
use trex_repair::{
    hash_value, BatchStats, CoalitionQuery, OracleStats, RepairAlgorithm, ShardedOracle,
};
use trex_shapley::{Coalition, Game, StochasticGame};
use trex_table::{CellRef, EncodedTable, Table, TableSamplers, Value};

/// Sentinel fingerprint for a Null-masked cell whose column dictionary has
/// no null code (codes are `u32`, so this cannot collide with one).
const MASK_NULL_SENTINEL: u64 = 1 << 32;
/// Base fingerprint for a Distinct-masked cell: `BASE | flat_index`. Flat
/// indices are far below 2^32, so these collide with neither codes nor the
/// null sentinel.
const MASK_DISTINCT_BASE: u64 = 1 << 33;

/// How a cell outside the coalition is represented in the masked table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MaskMode {
    /// Out-of-coalition cells become `NULL`, and a null satisfies *no*
    /// predicate (including `≠`). This is the principled reading of the
    /// paper's `∀ t_j[C] ∈ T^d \ S. t_j[C] = null`: an absent cell cannot
    /// witness a violation. Default.
    #[default]
    Null,
    /// Out-of-coalition cells become *labeled nulls*
    /// ([`Value::LabeledNull`]): unknown values that are distinct from every
    /// concrete value and from each other, never match an `=` predicate,
    /// and never vote in repair statistics. This reproduces the reading
    /// under which the paper counts `2^32` coalitions for the C1∧C2 route
    /// in Example 2.4 (a masked `t5[City]` still *differs* from
    /// `t3[City]`, so C1 fires) — see EXPERIMENTS.md E4 for the
    /// side-by-side.
    Distinct,
}

/// The constraint game: `Shap(C, Alg|t[A], Cᵢ)` of §2.2.
pub struct ConstraintGame<'a> {
    oracle: ShardedOracle<'a>,
    dcs: &'a [DenialConstraint],
    dirty: &'a Table,
    cell: CellRef,
    target: Value,
    /// Precomputed oracle-key components: the table fingerprint and target
    /// hash are coalition-invariant, and the per-DC display hashes let
    /// [`Game::value`] fingerprint a subset without cloning it — the DC
    /// clones happen only inside a cache miss.
    dirty_fp: u64,
    target_hash: u64,
    dc_hashes: Vec<u64>,
    /// Per-DC scan-cost estimates (input order); when present, batched
    /// dispatches order coalition scans most-expensive-first.
    dc_costs: Option<Vec<u64>>,
}

impl<'a> ConstraintGame<'a> {
    fn build(
        oracle: ShardedOracle<'a>,
        dcs: &'a [DenialConstraint],
        dirty: &'a Table,
        cell: CellRef,
        target: Value,
    ) -> Self {
        let dc_hashes = dcs
            .iter()
            .map(|dc| {
                let mut h = DefaultHasher::new();
                dc.to_string().hash(&mut h);
                h.finish()
            })
            .collect();
        ConstraintGame {
            oracle,
            dcs,
            dirty,
            cell,
            dirty_fp: dirty.fingerprint(),
            target_hash: hash_value(&target),
            target,
            dc_hashes,
            dc_costs: None,
        }
    }

    /// Build the game around a caller-configured oracle — capacity bound,
    /// batch size, custom [`trex_repair::OracleBackend`]; see
    /// [`ShardedOracle`]'s builders. Answers are identical to
    /// [`ConstraintGame::new`] whenever the oracle's backend honors the
    /// backend trait's fidelity contract.
    pub fn with_oracle(
        oracle: ShardedOracle<'a>,
        dcs: &'a [DenialConstraint],
        dirty: &'a Table,
        cell: CellRef,
        target: Value,
    ) -> Self {
        Self::build(oracle, dcs, dirty, cell, target)
    }

    /// Attach per-DC scan-cost estimates (input order — e.g.
    /// `trex_constraints::scan_cost_estimates`): batched dispatches then
    /// order coalition scans by the summed cost of their member DCs,
    /// most expensive first, instead of treating every DC as equally
    /// expensive. Ordering never changes any answer.
    ///
    /// # Panics
    /// Panics unless there is exactly one cost per DC.
    pub fn with_dc_costs(mut self, costs: Vec<u64>) -> Self {
        assert_eq!(costs.len(), self.dcs.len(), "need one cost per DC");
        self.dc_costs = Some(costs);
        self
    }

    /// Build the game. `target` is the clean value `t^c[A]` the repair is
    /// expected to produce (obtain it from a full repair run).
    pub fn new(
        alg: &'a dyn RepairAlgorithm,
        dcs: &'a [DenialConstraint],
        dirty: &'a Table,
        cell: CellRef,
        target: Value,
    ) -> Self {
        Self::build(ShardedOracle::new(alg), dcs, dirty, cell, target)
    }

    /// Build the game with an explicit oracle cache capacity (entries):
    /// the memo cache evicts (second-chance, per shard) once it holds
    /// `capacity` coalition answers, so long explanations run in bounded
    /// memory. Results are identical to [`ConstraintGame::new`] — eviction
    /// only ever costs recomputation time.
    pub fn with_oracle_capacity(
        alg: &'a dyn RepairAlgorithm,
        dcs: &'a [DenialConstraint],
        dirty: &'a Table,
        cell: CellRef,
        target: Value,
        capacity: usize,
    ) -> Self {
        Self::build(
            ShardedOracle::with_capacity(alg, capacity),
            dcs,
            dirty,
            cell,
            target,
        )
    }

    /// Disable oracle caching (ablation A1).
    pub fn without_cache(
        alg: &'a dyn RepairAlgorithm,
        dcs: &'a [DenialConstraint],
        dirty: &'a Table,
        cell: CellRef,
        target: Value,
    ) -> Self {
        Self::with_oracle_capacity(alg, dcs, dirty, cell, target, 0)
    }

    /// Oracle cache statistics (hits/misses) accumulated so far.
    pub fn oracle_stats(&self) -> OracleStats {
        self.oracle.stats()
    }

    /// Batched-dispatch statistics (dispatches, queries carried) of the
    /// oracle, accumulated so far.
    pub fn oracle_batch_stats(&self) -> BatchStats {
        self.oracle.batch_stats()
    }

    /// Fingerprint the subset from the precomputed per-DC hashes: two
    /// coalitions share a key exactly when they select the same DC
    /// display sequence, the same sharing `hash_dcs` over the cloned
    /// subset produced. DC clones are deferred into cache misses.
    fn coalition_key(&self, coalition: &Coalition) -> trex_repair::OracleKey {
        let mut h = DefaultHasher::new();
        let mut len = 0usize;
        for i in coalition.iter() {
            self.dc_hashes[i].hash(&mut h);
            len += 1;
        }
        len.hash(&mut h);
        (h.finish(), self.dirty_fp, self.cell, self.target_hash)
    }

    /// The coalition's scan as an owned-subset [`CoalitionQuery`].
    fn coalition_query(&self, coalition: &Coalition) -> CoalitionQuery<'_> {
        let subset: Vec<DenialConstraint> = coalition.iter().map(|i| self.dcs[i].clone()).collect();
        CoalitionQuery {
            dcs: Cow::Owned(subset),
            table: Cow::Borrowed(self.dirty),
            cell: self.cell,
            target: Cow::Borrowed(&self.target),
        }
    }
}

impl Game for ConstraintGame<'_> {
    fn num_players(&self) -> usize {
        self.dcs.len()
    }

    fn value(&self, coalition: &Coalition) -> f64 {
        let key = self.coalition_key(coalition);
        let repaired = self.oracle.query_keyed(key, || {
            let subset: Vec<DenialConstraint> =
                coalition.iter().map(|i| self.dcs[i].clone()).collect();
            trex_repair::repairs_cell_to(
                self.oracle.algorithm(),
                &subset,
                self.dirty,
                self.cell,
                &self.target,
            )
        });
        if repaired {
            1.0
        } else {
            0.0
        }
    }

    /// Batched evaluation through [`ShardedOracle::query_keyed_batch`]:
    /// cache keys are the per-coalition [`Self::coalition_key`]s (so
    /// answers and [`OracleStats`] are byte-identical to per-coalition
    /// [`Game::value`] calls), misses dedup through single-flight, and
    /// dispatches are ordered by the summed [`Self::with_dc_costs`]
    /// estimates of each coalition's member DCs when attached.
    fn value_batch(&self, coalitions: &[Coalition]) -> Vec<f64> {
        let keys: Vec<_> = coalitions.iter().map(|c| self.coalition_key(c)).collect();
        let costs: Option<Vec<u64>> = self.dc_costs.as_ref().map(|per_dc| {
            coalitions
                .iter()
                .map(|c| c.iter().map(|i| per_dc[i]).fold(0u64, u64::saturating_add))
                .collect()
        });
        self.oracle
            .query_keyed_batch(&keys, costs.as_deref(), |i| {
                self.coalition_query(&coalitions[i])
            })
            .into_iter()
            .map(|repaired| if repaired { 1.0 } else { 0.0 })
            .collect()
    }

    fn player_label(&self, i: usize) -> String {
        self.dcs[i].name.clone()
    }
}

/// Enumerate the players of the cell game: every cell of `table` except
/// `exclude` (the cell of interest), in row-major order.
pub fn cell_players(table: &Table, exclude: CellRef) -> Vec<CellRef> {
    table.cells().filter(|c| *c != exclude).collect()
}

/// The display label of a table cell, in the paper's `t5[League]` notation
/// (1-based row, attribute name). This is the exact label the cell games
/// give their players, so out-of-band consumers (the server's anytime
/// stream most notably) can label raw per-player estimates identically.
pub fn cell_label(table: &Table, cell: CellRef) -> String {
    format!("t{}[{}]", cell.row + 1, table.schema().attr(cell.attr).name)
}

fn label_of(table: &Table, cell: CellRef) -> String {
    cell_label(table, cell)
}

/// The masked cell game: `Shap(T^d, Alg|t[A], tᵢ[B])` of §2.2, with
/// out-of-coalition cells masked per [`MaskMode`].
pub struct CellGameMasked<'a> {
    oracle: ShardedOracle<'a>,
    dcs: &'a [DenialConstraint],
    dirty: &'a Table,
    cell: CellRef,
    target: Value,
    players: Vec<CellRef>,
    mode: MaskMode,
    /// Dictionary encoding of `dirty`: coalition fingerprints are packed
    /// per-cell code vectors hashed straight from here — a cache hit never
    /// clones or masks a table (see [`CellGameMasked::coalition_key`]).
    enc: EncodedTable,
    dirty_fp: u64,
    dcs_hash: u64,
    target_hash: u64,
}

impl<'a> CellGameMasked<'a> {
    fn build(
        oracle: ShardedOracle<'a>,
        dcs: &'a [DenialConstraint],
        dirty: &'a Table,
        cell: CellRef,
        target: Value,
        mode: MaskMode,
    ) -> Self {
        CellGameMasked {
            oracle,
            dcs,
            dirty,
            cell,
            players: cell_players(dirty, cell),
            mode,
            enc: EncodedTable::encode(dirty),
            dirty_fp: dirty.fingerprint(),
            dcs_hash: trex_repair::hash_dcs(dcs),
            target_hash: hash_value(&target),
            target,
        }
    }

    /// Build the game over all cells except the cell of interest.
    pub fn new(
        alg: &'a dyn RepairAlgorithm,
        dcs: &'a [DenialConstraint],
        dirty: &'a Table,
        cell: CellRef,
        target: Value,
        mode: MaskMode,
    ) -> Self {
        Self::build(ShardedOracle::new(alg), dcs, dirty, cell, target, mode)
    }

    /// Build the game with an explicit oracle cache capacity (entries):
    /// the memo cache evicts (second-chance, per shard) once it holds
    /// `capacity` coalition answers — the knob that keeps week-long
    /// sampling runs over large tables from growing the cache without
    /// bound. Results are identical to [`CellGameMasked::new`]; eviction
    /// only ever costs recomputation time.
    #[allow(clippy::too_many_arguments)]
    pub fn with_oracle_capacity(
        alg: &'a dyn RepairAlgorithm,
        dcs: &'a [DenialConstraint],
        dirty: &'a Table,
        cell: CellRef,
        target: Value,
        mode: MaskMode,
        capacity: usize,
    ) -> Self {
        Self::build(
            ShardedOracle::with_capacity(alg, capacity),
            dcs,
            dirty,
            cell,
            target,
            mode,
        )
    }

    /// Build the game around a caller-configured oracle — capacity bound,
    /// batch size, custom [`trex_repair::OracleBackend`]; see
    /// [`ShardedOracle`]'s builders. Answers are identical to
    /// [`CellGameMasked::new`] whenever the oracle's backend honors the
    /// backend trait's fidelity contract.
    pub fn with_oracle(
        oracle: ShardedOracle<'a>,
        dcs: &'a [DenialConstraint],
        dirty: &'a Table,
        cell: CellRef,
        target: Value,
        mode: MaskMode,
    ) -> Self {
        Self::build(oracle, dcs, dirty, cell, target, mode)
    }

    /// The player list (cell references), index-aligned with Shapley output.
    pub fn players(&self) -> &[CellRef] {
        &self.players
    }

    /// Oracle cache statistics.
    pub fn oracle_stats(&self) -> OracleStats {
        self.oracle.stats()
    }

    /// Batched-dispatch statistics (dispatches, queries carried) of the
    /// oracle, accumulated so far.
    pub fn oracle_batch_stats(&self) -> BatchStats {
        self.oracle.batch_stats()
    }

    /// Build the coalition table: players in `coalition` keep their dirty
    /// values, the rest are masked; the cell of interest always keeps its
    /// dirty value.
    pub fn coalition_table(&self, coalition: &Coalition) -> Table {
        let arity = self.dirty.arity();
        let mut out = self.dirty.clone();
        for (idx, player) in self.players.iter().enumerate() {
            if !coalition.contains(idx) {
                let masked = match self.mode {
                    MaskMode::Null => Value::Null,
                    MaskMode::Distinct => Value::LabeledNull(player.flat_index(arity) as u64),
                };
                out.set(*player, masked);
            }
        }
        out
    }

    /// The oracle key of a coalition, computed without materializing the
    /// masked table: hash the dirty fingerprint, the mask mode, and one
    /// `u64` per player cell — its dictionary code when in the coalition,
    /// a mask fingerprint otherwise. A Null-masked cell maps to the
    /// column's null code (so masking an already-null cell shares its key
    /// with including it, exactly as the materialized tables coincide) or
    /// to [`MASK_NULL_SENTINEL`] when the column has no null; a
    /// Distinct-masked cell maps to [`MASK_DISTINCT_BASE`]`| flat_index`,
    /// mirroring the pairwise-distinct labeled nulls it would become. Two
    /// coalitions share a key exactly when their masked tables are equal —
    /// the same sharing that hashing the materialized table produced.
    fn coalition_key(&self, coalition: &Coalition) -> trex_repair::OracleKey {
        let arity = self.dirty.arity();
        let mut h = DefaultHasher::new();
        self.dirty_fp.hash(&mut h);
        (self.mode == MaskMode::Distinct).hash(&mut h);
        for (idx, player) in self.players.iter().enumerate() {
            let fp = if coalition.contains(idx) {
                u64::from(self.enc.code(player.row, player.attr))
            } else {
                match self.mode {
                    MaskMode::Null => self
                        .enc
                        .dict(player.attr)
                        .null_code()
                        .map_or(MASK_NULL_SENTINEL, u64::from),
                    MaskMode::Distinct => MASK_DISTINCT_BASE | player.flat_index(arity) as u64,
                }
            };
            fp.hash(&mut h);
        }
        (self.dcs_hash, h.finish(), self.cell, self.target_hash)
    }
}

impl Game for CellGameMasked<'_> {
    fn num_players(&self) -> usize {
        self.players.len()
    }

    fn value(&self, coalition: &Coalition) -> f64 {
        let key = self.coalition_key(coalition);
        let repaired = self.oracle.query_keyed(key, || {
            let table = self.coalition_table(coalition);
            trex_repair::repairs_cell_to(
                self.oracle.algorithm(),
                self.dcs,
                &table,
                self.cell,
                &self.target,
            )
        });
        if repaired {
            1.0
        } else {
            0.0
        }
    }

    /// Batched evaluation through [`ShardedOracle::query_keyed_batch`]:
    /// cache keys are the per-coalition [`Self::coalition_key`]s (so
    /// answers and [`OracleStats`] are byte-identical to per-coalition
    /// [`Game::value`] calls) and misses dedup through single-flight.
    /// Every cell-game query scans the same full DC set against a
    /// same-sized masked table, so no per-query cost ordering applies;
    /// masked tables are materialized only for actual misses.
    fn value_batch(&self, coalitions: &[Coalition]) -> Vec<f64> {
        let keys: Vec<_> = coalitions.iter().map(|c| self.coalition_key(c)).collect();
        self.oracle
            .query_keyed_batch(&keys, None, |i| CoalitionQuery {
                dcs: Cow::Borrowed(self.dcs),
                table: Cow::Owned(self.coalition_table(&coalitions[i])),
                cell: self.cell,
                target: Cow::Borrowed(&self.target),
            })
            .into_iter()
            .map(|repaired| if repaired { 1.0 } else { 0.0 })
            .collect()
    }

    fn player_label(&self, i: usize) -> String {
        label_of(self.dirty, self.players[i])
    }
}

/// The sampled cell game of Example 2.5: out-of-coalition cells take random
/// draws from their column's empirical distribution.
pub struct CellGameSampled<'a> {
    alg: &'a dyn RepairAlgorithm,
    dcs: &'a [DenialConstraint],
    dirty: &'a Table,
    cell: CellRef,
    target: Value,
    players: Vec<CellRef>,
    samplers: TableSamplers,
}

impl<'a> CellGameSampled<'a> {
    /// Build the game; column samplers are derived from the dirty table.
    pub fn new(
        alg: &'a dyn RepairAlgorithm,
        dcs: &'a [DenialConstraint],
        dirty: &'a Table,
        cell: CellRef,
        target: Value,
    ) -> Self {
        CellGameSampled {
            alg,
            dcs,
            dirty,
            cell,
            target,
            players: cell_players(dirty, cell),
            samplers: TableSamplers::new(dirty),
        }
    }

    /// The player list (cell references), index-aligned with Shapley output.
    pub fn players(&self) -> &[CellRef] {
        &self.players
    }

    fn eval(&self, table: &Table) -> f64 {
        if trex_repair::repairs_cell_to(self.alg, self.dcs, table, self.cell, &self.target) {
            1.0
        } else {
            0.0
        }
    }
}

impl StochasticGame for CellGameSampled<'_> {
    fn num_players(&self) -> usize {
        self.players.len()
    }

    /// Example 2.5, verbatim: build *one* replacement table in which
    /// coalition cells keep their original values and all other cells get
    /// random draws; evaluate it once with the player's original value and
    /// once with the player's value also replaced by a draw.
    fn eval_pair(&self, coalition: &Coalition, player: usize, rng: &mut dyn RngCore) -> (f64, f64) {
        debug_assert!(!coalition.contains(player));
        let mut table = self.dirty.clone();
        for (idx, cellref) in self.players.iter().enumerate() {
            if idx != player && !coalition.contains(idx) {
                let draw = self.samplers.sample(cellref.attr, rng);
                table.set(*cellref, draw);
            }
        }
        // Instance 1: player keeps its original value (already in place).
        let with = self.eval(&table);
        // Instance 2: player's value replaced by a random draw too.
        let player_cell = self.players[player];
        let draw = self.samplers.sample(player_cell.attr, rng);
        table.set(player_cell, draw);
        let without = self.eval(&table);
        (with, without)
    }

    fn player_label(&self, i: usize) -> String {
        label_of(self.dirty, self.players[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trex_datagen::laliga;
    use trex_shapley::{shapley_exact_rational, Rational};

    #[test]
    fn constraint_game_reproduces_example_2_3() {
        let dirty = laliga::dirty_table();
        let dcs = laliga::constraints();
        let alg = laliga::algorithm1();
        let cell = laliga::cell_of_interest(&dirty);
        let game = ConstraintGame::new(&alg, &dcs, &dirty, cell, Value::str("Spain"));
        let phi = shapley_exact_rational(&game).unwrap();
        assert_eq!(phi[0], Rational { num: 1, den: 6 }); // C1
        assert_eq!(phi[1], Rational { num: 1, den: 6 }); // C2
        assert_eq!(phi[2], Rational { num: 2, den: 3 }); // C3
        assert_eq!(phi[3], Rational { num: 0, den: 1 }); // C4
    }

    #[test]
    fn constraint_game_labels_are_dc_names() {
        let dirty = laliga::dirty_table();
        let dcs = laliga::constraints();
        let alg = laliga::algorithm1();
        let cell = laliga::cell_of_interest(&dirty);
        let game = ConstraintGame::new(&alg, &dcs, &dirty, cell, Value::str("Spain"));
        assert_eq!(Game::player_label(&game, 0), "C1");
        assert_eq!(Game::player_label(&game, 3), "C4");
    }

    #[test]
    fn oracle_cache_pays_off_across_solver_runs() {
        let dirty = laliga::dirty_table();
        let dcs = laliga::constraints();
        let alg = laliga::algorithm1();
        let cell = laliga::cell_of_interest(&dirty);
        let game = ConstraintGame::new(&alg, &dcs, &dirty, cell, Value::str("Spain"));
        // The subset-enumeration solver evaluates each of the 16 coalitions
        // exactly once...
        let _ = trex_shapley::shapley_exact(&game).unwrap();
        assert_eq!(
            game.oracle_stats(),
            trex_repair::OracleStats {
                hits: 0,
                misses: 16,
                evictions: 0
            }
        );
        // ...and a second solve (e.g. the rational cross-check an explainer
        // also runs) is answered entirely from cache.
        let _ = trex_shapley::shapley_exact_rational(&game).unwrap();
        let stats = game.oracle_stats();
        assert_eq!(stats.misses, 16);
        assert_eq!(stats.hits, 16);
    }

    #[test]
    fn batched_values_match_per_coalition_values() {
        let dirty = laliga::dirty_table();
        let dcs = laliga::constraints();
        let alg = laliga::algorithm1();
        let cell = laliga::cell_of_interest(&dirty);
        // Constraint game, with the analyzer's cost estimates attached so
        // the dispatch reorders — reordering must not change answers.
        let game = ConstraintGame::new(&alg, &dcs, &dirty, cell, Value::str("Spain"))
            .with_dc_costs(trex_constraints::scan_cost_estimates(&dcs, &dirty));
        let n = Game::num_players(&game);
        let coalitions: Vec<Coalition> =
            (0..1u64 << n).map(|m| Coalition::from_mask(n, m)).collect();
        let reference = ConstraintGame::new(&alg, &dcs, &dirty, cell, Value::str("Spain"));
        let want: Vec<f64> = coalitions.iter().map(|c| reference.value(c)).collect();
        assert_eq!(game.value_batch(&coalitions), want);
        assert_eq!(game.oracle_stats(), reference.oracle_stats());
        assert_eq!(
            game.oracle_batch_stats(),
            BatchStats {
                batches: 1,
                queries: 16
            }
        );
        // A second batch is answered from cache: no new dispatches.
        assert_eq!(game.value_batch(&coalitions), want);
        assert_eq!(game.oracle_batch_stats().batches, 1);

        // Cell game: same check over a handful of prefix coalitions.
        let cg = CellGameMasked::new(
            &alg,
            &dcs,
            &dirty,
            cell,
            Value::str("Spain"),
            MaskMode::Null,
        );
        let m = Game::num_players(&cg);
        let prefixes: Vec<Coalition> = (0..=m).map(|k| Coalition::from_players(m, 0..k)).collect();
        let cg_ref = CellGameMasked::new(
            &alg,
            &dcs,
            &dirty,
            cell,
            Value::str("Spain"),
            MaskMode::Null,
        );
        let want: Vec<f64> = prefixes.iter().map(|c| cg_ref.value(c)).collect();
        assert_eq!(cg.value_batch(&prefixes), want);
        assert_eq!(cg.oracle_stats(), cg_ref.oracle_stats());
    }

    #[test]
    fn cell_game_has_35_players_for_the_paper_table() {
        let dirty = laliga::dirty_table();
        let dcs = laliga::constraints();
        let alg = laliga::algorithm1();
        let cell = laliga::cell_of_interest(&dirty);
        let game = CellGameMasked::new(
            &alg,
            &dcs,
            &dirty,
            cell,
            Value::str("Spain"),
            MaskMode::Null,
        );
        assert_eq!(Game::num_players(&game), 35);
        assert!(!game.players().contains(&cell));
    }

    #[test]
    fn empty_coalition_value_is_zero() {
        let dirty = laliga::dirty_table();
        let dcs = laliga::constraints();
        let alg = laliga::algorithm1();
        let cell = laliga::cell_of_interest(&dirty);
        for mode in [MaskMode::Null, MaskMode::Distinct] {
            let game = CellGameMasked::new(&alg, &dcs, &dirty, cell, Value::str("Spain"), mode);
            let empty = Coalition::empty(Game::num_players(&game));
            assert_eq!(game.value(&empty), 0.0, "{mode:?}");
        }
    }

    #[test]
    fn full_coalition_repairs_the_cell() {
        let dirty = laliga::dirty_table();
        let dcs = laliga::constraints();
        let alg = laliga::algorithm1();
        let cell = laliga::cell_of_interest(&dirty);
        for mode in [MaskMode::Null, MaskMode::Distinct] {
            let game = CellGameMasked::new(&alg, &dcs, &dirty, cell, Value::str("Spain"), mode);
            let full = Coalition::full(Game::num_players(&game));
            assert_eq!(game.value(&full), 1.0, "{mode:?}");
        }
    }

    #[test]
    fn example_2_4_c3_route_single_pair_suffices() {
        // {t5[League]} ∪ {t1[Country], t1[League]} repairs t5[Country].
        let dirty = laliga::dirty_table();
        let dcs = laliga::constraints();
        let alg = laliga::algorithm1();
        let cell = laliga::cell_of_interest(&dirty);
        let game = CellGameMasked::new(
            &alg,
            &dcs,
            &dirty,
            cell,
            Value::str("Spain"),
            MaskMode::Null,
        );
        let league = dirty.schema().id("League");
        let country = dirty.schema().id("Country");
        let wanted = [
            CellRef::new(4, league),
            CellRef::new(0, league),
            CellRef::new(0, country),
        ];
        let players = game.players();
        let coalition = Coalition::from_players(
            players.len(),
            wanted
                .iter()
                .map(|c| players.iter().position(|p| p == c).unwrap()),
        );
        assert_eq!(game.value(&coalition), 1.0);
        // Without t5[League], the same witness pair does nothing.
        let coalition2 = Coalition::from_players(
            players.len(),
            wanted[1..]
                .iter()
                .map(|c| players.iter().position(|p| p == c).unwrap()),
        );
        assert_eq!(game.value(&coalition2), 0.0);
    }

    #[test]
    fn example_2_4_c1c2_route_under_both_mask_modes() {
        // The paper's minimal C1∧C2-route coalition is {t3[Team], t3[City],
        // t3[Country], t5[Team]}. Under Distinct masking (the paper's
        // counting semantics) this suffices: the masked t5[City] still
        // *differs* from t3[City], so C1 fires and repairs it. Under Null
        // masking the route needs more: t5[City] itself (a null cannot
        // witness the C1 violation) plus one more Madrid vote (t6[City]),
        // without which the 1-vs-1 City tie swaps t3's value away and
        // breaks the C2 join.
        let dirty = laliga::dirty_table();
        let dcs = laliga::constraints();
        let alg = laliga::algorithm1();
        let cell = laliga::cell_of_interest(&dirty);
        let team = dirty.schema().id("Team");
        let city = dirty.schema().id("City");
        let country = dirty.schema().id("Country");
        let base = [
            CellRef::new(2, team),
            CellRef::new(2, city),
            CellRef::new(2, country),
            CellRef::new(4, team),
        ];

        let by_mode = |mode: MaskMode, cells: &[CellRef]| {
            let game = CellGameMasked::new(&alg, &dcs, &dirty, cell, Value::str("Spain"), mode);
            let players = game.players().to_vec();
            let coalition = Coalition::from_players(
                players.len(),
                cells
                    .iter()
                    .map(|c| players.iter().position(|p| p == c).unwrap()),
            );
            game.value(&coalition)
        };

        assert_eq!(by_mode(MaskMode::Distinct, &base), 1.0);
        assert_eq!(by_mode(MaskMode::Null, &base), 0.0);
        let mut bigger = base.to_vec();
        bigger.push(CellRef::new(4, city));
        assert_eq!(by_mode(MaskMode::Null, &bigger), 0.0);
        bigger.push(CellRef::new(5, city));
        assert_eq!(by_mode(MaskMode::Null, &bigger), 1.0);
    }

    #[test]
    fn sampled_game_eval_pair_uses_common_randomness() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let dirty = laliga::dirty_table();
        let dcs = laliga::constraints();
        let alg = laliga::algorithm1();
        let cell = laliga::cell_of_interest(&dirty);
        let game = CellGameSampled::new(&alg, &dcs, &dirty, cell, Value::str("Spain"));
        let n = StochasticGame::num_players(&game);
        assert_eq!(n, 35);
        let mut rng = StdRng::seed_from_u64(0);
        // Full coalition minus one player: v(S∪{i}) must be 1 regardless of
        // the single draw for `without`.
        let mut everyone = Coalition::full(n);
        everyone.remove(0);
        let (with, _without) = game.eval_pair(&everyone, 0, &mut rng);
        assert_eq!(with, 1.0);
    }

    #[test]
    fn cell_game_labels_use_one_based_rows_and_attr_names() {
        let dirty = laliga::dirty_table();
        let dcs = laliga::constraints();
        let alg = laliga::algorithm1();
        let cell = laliga::cell_of_interest(&dirty);
        let game = CellGameMasked::new(
            &alg,
            &dcs,
            &dirty,
            cell,
            Value::str("Spain"),
            MaskMode::Null,
        );
        assert_eq!(Game::player_label(&game, 0), "t1[Team]");
        // Player index of t5[League]: players skip t5[Country].
        let league = dirty.schema().id("League");
        let idx = game
            .players()
            .iter()
            .position(|c| *c == CellRef::new(4, league))
            .unwrap();
        assert_eq!(Game::player_label(&game, idx), "t5[League]");
    }

    #[test]
    fn distinct_mask_uses_labeled_nulls() {
        let dirty = laliga::dirty_table();
        let dcs = laliga::constraints();
        let alg = laliga::algorithm1();
        let cell = laliga::cell_of_interest(&dirty);
        let game = CellGameMasked::new(
            &alg,
            &dcs,
            &dirty,
            cell,
            Value::str("Spain"),
            MaskMode::Distinct,
        );
        let table = game.coalition_table(&Coalition::empty(Game::num_players(&game)));
        // Every player cell is a labeled null; labels are pairwise distinct;
        // the cell of interest keeps its dirty value.
        let mut labels = Vec::new();
        for (c, v) in table.cells_with_values() {
            if c == cell {
                assert_eq!(v, &Value::str("España"));
            } else {
                match v {
                    Value::LabeledNull(id) => labels.push(*id),
                    other => panic!("expected labeled null, got {other:?}"),
                }
            }
        }
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 35);
    }
}
