//! # trex — Table Repair Explanations
//!
//! A from-scratch Rust reproduction of **T-REx** (Deutch, Frost, Gilad,
//! Sheffer — SIGMOD 2020 demo): explanations for the output of *black-box*
//! table-repair algorithms via Shapley values.
//!
//! Given a repair algorithm `Alg`, a set of denial constraints `C`, a dirty
//! table `T^d`, and a repaired cell of interest `t[A]`, T-REx treats the
//! binary outcome `Alg|t[A](·,·) ∈ {0,1}` ("is the cell repaired to its
//! clean value?") as the characteristic function of two cooperative games —
//! players = constraints, players = cells — and ranks the players by their
//! Shapley value:
//!
//! ```
//! use trex::Explainer;
//! use trex_datagen::laliga;
//!
//! let dirty = laliga::dirty_table();       // Figure 2a
//! let dcs = laliga::constraints();         // Figure 1 (C1..C4)
//! let alg = laliga::algorithm1();          // the paper's Algorithm 1
//!
//! let explainer = Explainer::new(&alg);
//! let cell = laliga::cell_of_interest(&dirty);   // t5[Country]
//! let out = explainer.explain_constraints(&dcs, &dirty, cell).unwrap();
//! assert_eq!(out.ranking.top().unwrap().label, "C3");
//! assert_eq!(out.exact[2].1.to_string(), "2/3"); // Figure 1's value for C3
//! ```
//!
//! Modules:
//! * [`games`] — the constraint game and the (masked / sampled) cell games;
//! * [`explain`] — the [`Explainer`] front door;
//! * [`ranking`] — sorted Shapley rankings with intensity buckets;
//! * [`report`] — text renderings of the demo's three screens (Figure 3);
//! * [`session`] — the interactive repair→explain→edit loop of §4.

#![warn(missing_docs)]

pub mod explain;
pub mod games;
pub mod ranking;
pub mod report;
pub mod session;

pub use explain::{
    AdaptiveConfig, CellExplanation, ConstraintExplanation, ExplainError, Explainer,
};
pub use games::{
    cell_label, cell_players, CellGameMasked, CellGameSampled, ConstraintGame, MaskMode,
};
pub use ranking::{RankEntry, Ranking, INTENSITY_LEVELS};
pub use report::{render_explanation_screen, render_input_screen, render_repair_screen};
pub use session::{HistoryEntry, Session};
pub use trex_shapley::ExecConfig;
