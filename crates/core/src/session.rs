//! The interactive session of the demo scenario (§4).
//!
//! The demo's loop: load table + DCs → repair → pick a repaired cell →
//! explain → *act on the explanation* (change DCs or cell values) → repair
//! again → compare. [`Session`] packages that loop as an owned, mutable
//! object so example binaries and integration tests can drive exactly the
//! workflow the demonstration walks the audience through.

use crate::explain::{CellExplanation, ConstraintExplanation, ExplainError, Explainer};
use crate::games::MaskMode;
use std::sync::Arc;
use trex_constraints::{DenialConstraint, ResolveError, Violation};
use trex_repair::{OracleBackend, OracleCache, RepairAlgorithm, RepairResult, ShardedOracle};
use trex_shapley::{AnytimeCheckpoint, AnytimeControl, ExecConfig, SamplingConfig, Schedule};
use trex_table::{CellRef, Table, Value};

/// One entry of the session's repair history.
#[derive(Debug, Clone)]
pub struct HistoryEntry {
    /// What the user changed before this repair (human-readable).
    pub action: String,
    /// Number of cells the repair changed.
    pub cells_repaired: usize,
}

/// An interactive T-REx session.
///
/// `Session` is `Send + Sync`: the server shares one behind an `RwLock`,
/// explanation methods take `&self`, and concurrent explanations pool
/// their coalition answers through one shared [`OracleCache`].
pub struct Session {
    alg: Box<dyn RepairAlgorithm>,
    table: Table,
    dcs: Vec<DenialConstraint>,
    history: Vec<HistoryEntry>,
    cfg: ExecConfig,
    backend: Option<Box<dyn OracleBackend>>,
    oracle_cache: Arc<OracleCache>,
}

impl Session {
    /// Start a session over a dirty table and constraint set. Explanations
    /// run single-threaded by default; see [`Session::with_config`].
    pub fn new(alg: Box<dyn RepairAlgorithm>, table: Table, dcs: Vec<DenialConstraint>) -> Self {
        Session {
            alg,
            table,
            dcs,
            history: Vec::new(),
            cfg: ExecConfig::default(),
            backend: None,
            oracle_cache: Arc::new(OracleCache::new()),
        }
    }

    /// Apply an execution configuration wholesale: thread count, schedule,
    /// and oracle capacity in one value shared with `Explainer` and the
    /// repair engines. The config's `seed`, if set, is not consumed here —
    /// explanation methods take their seed from the explicit
    /// [`SamplingConfig`] argument.
    ///
    /// Rebuilds the session's shared coalition cache at the config's
    /// oracle capacity ([`ShardedOracle::DEFAULT_CAPACITY`] when unset).
    pub fn with_config(mut self, cfg: ExecConfig) -> Self {
        self.cfg = cfg;
        self.oracle_cache = Arc::new(OracleCache::with_capacity(
            cfg.oracle_cap().unwrap_or(ShardedOracle::DEFAULT_CAPACITY),
        ));
        self
    }

    /// The session's execution configuration.
    pub fn config(&self) -> ExecConfig {
        self.cfg
    }

    /// Use `threads` sampling workers for the session's cell explanations
    /// (must be ≥ 1; resolve user input with
    /// `trex_shapley::resolve_threads` first). Explanations stay
    /// deterministic per `(seed, threads)` pair.
    #[deprecated(note = "build an ExecConfig and pass it to with_config")]
    pub fn set_threads(&mut self, threads: usize) {
        self.cfg = self.cfg.with_threads(threads);
    }

    /// The configured sampling worker count.
    pub fn threads(&self) -> usize {
        self.cfg.threads()
    }

    /// Pin the all-player sampling schedule for the session's cell
    /// explanations (`Schedule::PlayerSharded` is serial-identical at any
    /// thread count, `Schedule::BudgetSplit` deterministic per
    /// `(seed, threads)`). The default lets `Schedule::auto` choose from
    /// the cell count.
    #[deprecated(note = "build an ExecConfig and pass it to with_config")]
    pub fn set_schedule(&mut self, schedule: Schedule) {
        self.cfg = self.cfg.with_schedule(schedule);
    }

    /// The pinned schedule, if any (`None` = auto by cell count).
    pub fn schedule(&self) -> Option<Schedule> {
        self.cfg.schedule()
    }

    /// Bound the repair-oracle memo cache of the session's explanations to
    /// `capacity` entries (second-chance eviction once full; `0` disables
    /// caching). Explanation results are unchanged at any capacity — the
    /// knob trades recomputation time for bounded memory on long sessions
    /// over large tables.
    #[deprecated(note = "build an ExecConfig and pass it to with_config")]
    pub fn set_oracle_capacity(&mut self, capacity: usize) {
        self.cfg = self.cfg.with_oracle_cap(capacity);
    }

    /// The pinned oracle capacity, if any (`None` = the oracle default).
    pub fn oracle_capacity(&self) -> Option<usize> {
        self.cfg.oracle_cap()
    }

    /// Route the session's coalition queries through an [`OracleBackend`]
    /// instead of calling the wrapped algorithm inline — e.g. a
    /// [`trex_repair::RemoteRepair`] adapter for a per-call-latency repair
    /// service. Combine with [`ExecConfig::with_oracle_batch`] to bound how
    /// many cache-missing coalitions each backend call carries. Explanations
    /// are byte-identical with or without a backend.
    pub fn with_oracle_backend(mut self, backend: Box<dyn OracleBackend>) -> Self {
        self.backend = Some(backend);
        self
    }

    /// The installed oracle backend, if any.
    pub fn oracle_backend(&self) -> Option<&dyn OracleBackend> {
        self.backend.as_deref()
    }

    /// The session's shared coalition-answer cache. Every explanation run
    /// under a compatible oracle capacity memoizes into (and reads from)
    /// this one cache, so a burst of requests against the same
    /// `(table, constraints)` pair pays for each distinct coalition repair
    /// once. Exposed for telemetry ([`OracleCache::stats`]) and explicit
    /// flushes ([`Session::flush_oracle_cache`]).
    pub fn oracle_cache(&self) -> &Arc<OracleCache> {
        &self.oracle_cache
    }

    /// Drop every memoized coalition answer.
    ///
    /// The session calls this itself after every input mutation
    /// ([`Session::set_cell`], [`Session::upsert_constraint`],
    /// [`Session::remove_constraint`]): cache keys embed the table
    /// fingerprint and DC-set hash, so stale entries were already
    /// unreachable, but flushing returns their memory and keeps the
    /// hit-rate telemetry honest about the new inputs.
    pub fn flush_oracle_cache(&self) {
        self.oracle_cache.clear();
    }

    /// The session's explainer: the wrapped algorithm under the session's
    /// execution configuration.
    fn explainer(&self) -> Explainer<'_> {
        self.explainer_for(&self.cfg)
    }

    /// An explainer for one request's execution configuration — the
    /// session default or a per-request override (the server parses
    /// `?threads=…&seed=…` into an [`ExecConfig`] per request).
    ///
    /// The session's shared coalition cache is attached whenever the
    /// request's oracle capacity agrees with the cache's; a request
    /// demanding a different capacity gets a private, correctly-sized
    /// oracle instead (results are identical either way — only memo
    /// reuse differs).
    fn explainer_for(&self, exec: &ExecConfig) -> Explainer<'_> {
        let mut ex = Explainer::new(self.alg.as_ref()).with_config(*exec);
        if let Some(backend) = self.backend.as_deref() {
            ex = ex.with_oracle_backend(backend);
        }
        let requested = exec.oracle_cap().unwrap_or(ShardedOracle::DEFAULT_CAPACITY);
        if requested == self.oracle_cache.capacity() {
            ex = ex.with_oracle_cache(Arc::clone(&self.oracle_cache));
        }
        ex
    }

    /// The current (possibly user-edited) dirty table.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// The current constraint set.
    pub fn constraints(&self) -> &[DenialConstraint] {
        &self.dcs
    }

    /// The session history (one entry per repair run).
    pub fn history(&self) -> &[HistoryEntry] {
        &self.history
    }

    /// The input screen's violation list: every witness of the current
    /// constraint set against the current table, detected on the session's
    /// worker threads (identical output at any thread count). Re-runs
    /// cheaply after each edit, which is what keeps the §4 debugging loop
    /// interactive on large tables.
    pub fn violations(&self) -> Result<Vec<Violation>, ResolveError> {
        self.violations_for(&self.cfg)
    }

    /// [`Session::violations`] under a per-request execution configuration
    /// (thread count and redundant-scan pruning; identical output at any
    /// setting).
    pub fn violations_for(&self, exec: &ExecConfig) -> Result<Vec<Violation>, ResolveError> {
        let resolved: Result<Vec<_>, _> = self
            .dcs
            .iter()
            .map(|d| d.resolved(self.table.schema()))
            .collect();
        let resolved = resolved?;
        Ok(if exec.prune_redundant() {
            trex_constraints::find_all_violations_par_pruned(&resolved, &self.table, exec.threads())
        } else {
            trex_constraints::find_all_violations_par(&resolved, &self.table, exec.threads())
        })
    }

    /// Pre-flight static analysis of the session's constraint program
    /// against the session table: typecheck, satisfiability, subsumption,
    /// and the scan-cost plan report. Cheap (no data scan beyond one
    /// dictionary encoding) — run it before the first repair to catch
    /// typos and dead constraints early.
    pub fn analyze(&self) -> trex_constraints::Analysis {
        trex_constraints::analyze_with_table(&self.dcs, &self.table)
    }

    /// The "Repair" button: run the black box on the current inputs.
    pub fn repair(&mut self) -> RepairResult {
        let result = self.alg.repair(&self.dcs, &self.table);
        self.history.push(HistoryEntry {
            action: "repair".to_string(),
            cells_repaired: result.changes.len(),
        });
        result
    }

    /// The "Explain" button, constraint half: Shapley values of the DCs for
    /// the repair of `cell`.
    pub fn explain_constraints(
        &self,
        cell: CellRef,
    ) -> Result<ConstraintExplanation, ExplainError> {
        self.explainer()
            .explain_constraints(&self.dcs, &self.table, cell)
    }

    /// [`Session::explain_constraints`] under a per-request execution
    /// configuration. Results are independent of the configuration (the
    /// constraint game is exact); the knobs only steer resource use.
    pub fn explain_constraints_for(
        &self,
        cell: CellRef,
        exec: &ExecConfig,
    ) -> Result<ConstraintExplanation, ExplainError> {
        self.explainer_for(exec)
            .explain_constraints(&self.dcs, &self.table, cell)
    }

    /// [`Session::explain_constraints`], also returning the repair-oracle
    /// cache counters (hits, misses, evictions) the explanation
    /// accumulated — the cache-pressure telemetry `exp_stress` records.
    /// The explanation itself is identical at any
    /// [`ExecConfig::with_oracle_cap`] setting.
    pub fn explain_constraints_with_stats(
        &self,
        cell: CellRef,
    ) -> Result<(ConstraintExplanation, trex_repair::OracleStats), ExplainError> {
        self.explainer()
            .explain_constraints_with_stats(&self.dcs, &self.table, cell)
    }

    /// [`Session::explain_constraints_with_stats`], additionally returning
    /// the oracle's batch-dispatch counters: how many bounded dispatch
    /// groups [`trex_repair::ShardedOracle::query_keyed_batch`] formed and
    /// how many cache-missing queries they carried — whether those groups
    /// were answered inline or by an installed
    /// [`Session::with_oracle_backend`]. [`ExecConfig::with_oracle_batch`]
    /// caps the group size.
    pub fn explain_constraints_with_batch_stats(
        &self,
        cell: CellRef,
    ) -> Result<
        (
            ConstraintExplanation,
            trex_repair::OracleStats,
            trex_repair::BatchStats,
        ),
        ExplainError,
    > {
        self.explainer()
            .explain_constraints_with_batch_stats(&self.dcs, &self.table, cell)
    }

    /// The "Explain" button, cell half (sampling estimator of §2.3).
    pub fn explain_cells(
        &self,
        cell: CellRef,
        config: SamplingConfig,
    ) -> Result<CellExplanation, ExplainError> {
        self.explainer()
            .explain_cells_sampled(&self.dcs, &self.table, cell, config)
    }

    /// Cell explanation under masked (definition) semantics.
    pub fn explain_cells_masked(
        &self,
        cell: CellRef,
        mode: MaskMode,
        config: SamplingConfig,
    ) -> Result<CellExplanation, ExplainError> {
        self.explainer()
            .explain_cells_masked(&self.dcs, &self.table, cell, mode, config)
    }

    /// [`Session::explain_cells_masked`] under a per-request execution
    /// configuration: the request's thread count and schedule drive the
    /// parallel estimator (deterministic per `(seed, threads, schedule)`),
    /// its oracle capacity decides whether the session's shared coalition
    /// cache is used.
    pub fn explain_cells_masked_for(
        &self,
        cell: CellRef,
        mode: MaskMode,
        config: SamplingConfig,
        exec: &ExecConfig,
    ) -> Result<CellExplanation, ExplainError> {
        self.explainer_for(exec)
            .explain_cells_masked(&self.dcs, &self.table, cell, mode, config)
    }

    /// Anytime cell explanation: [`Session::explain_cells_masked_for`],
    /// but `on_checkpoint` observes the in-progress per-cell estimates
    /// every `checkpoint_every` permutation walks and can stop the run
    /// ([`AnytimeControl::Stop`]) when a latency budget expires or the
    /// requesting client goes away. A run that completes (`finished ==
    /// true`) returns bit-for-bit what [`Session::explain_cells_masked_for`]
    /// returns under the same `(seed, threads, schedule)`.
    pub fn explain_cells_masked_anytime(
        &self,
        cell: CellRef,
        mode: MaskMode,
        config: SamplingConfig,
        exec: &ExecConfig,
        checkpoint_every: usize,
        on_checkpoint: impl FnMut(&AnytimeCheckpoint<'_>) -> AnytimeControl,
    ) -> Result<(CellExplanation, bool), ExplainError> {
        self.explainer_for(exec).explain_cells_masked_anytime(
            &self.dcs,
            &self.table,
            cell,
            mode,
            config,
            checkpoint_every,
            on_checkpoint,
        )
    }

    /// User edit: overwrite a cell of the input table ("changing specific
    /// cells to make the repair more accurate", §1). Returns the previous
    /// value.
    pub fn set_cell(&mut self, cell: CellRef, value: Value) -> Value {
        self.history.push(HistoryEntry {
            action: format!("set {cell} := {value}"),
            cells_repaired: 0,
        });
        self.flush_oracle_cache();
        self.table.set(cell, value)
    }

    /// User edit: remove a constraint by name ("modify the most influencing
    /// constraints", §1). Returns it if present.
    pub fn remove_constraint(&mut self, name: &str) -> Option<DenialConstraint> {
        let idx = self.dcs.iter().position(|d| d.name == name)?;
        self.history.push(HistoryEntry {
            action: format!("remove constraint {name}"),
            cells_repaired: 0,
        });
        self.flush_oracle_cache();
        Some(self.dcs.remove(idx))
    }

    /// Suggest constraints mined from the current table (FastDC-style, see
    /// `trex_constraints::mine_dcs`) that are **not already implied** by
    /// the session's constraint set — the natural "what am I missing?"
    /// companion to the §4 debugging loop. Suggestions are named
    /// `S1, S2, …` and capped at `limit`.
    pub fn suggest_constraints(&self, limit: usize) -> Vec<DenialConstraint> {
        let mined =
            trex_constraints::mine_dcs(&self.table, &trex_constraints::MineConfig::default());
        let mut out = Vec::new();
        // Compare by rendered predicate text: resolution state (attr ids
        // filled in or not) must not affect duplicate detection.
        let rendered = |dc: &DenialConstraint| {
            let mut preds: Vec<String> = dc.predicates.iter().map(|p| p.to_string()).collect();
            preds.sort();
            preds
        };
        let have: Vec<Vec<String>> = self.dcs.iter().map(&rendered).collect();
        for dc in mined {
            let duplicate = have.contains(&rendered(&dc));
            if !duplicate {
                let mut named = dc;
                named.name = format!("S{}", out.len() + 1);
                out.push(named);
                if out.len() == limit {
                    break;
                }
            }
        }
        out
    }

    /// User edit: add (or replace, by name) a constraint.
    pub fn upsert_constraint(&mut self, dc: DenialConstraint) {
        self.history.push(HistoryEntry {
            action: format!("upsert constraint {}", dc.name),
            cells_repaired: 0,
        });
        self.flush_oracle_cache();
        match self.dcs.iter_mut().find(|d| d.name == dc.name) {
            Some(slot) => *slot = dc,
            None => self.dcs.push(dc),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trex_datagen::laliga;
    use trex_table::Value;

    fn session() -> Session {
        Session::new(
            Box::new(laliga::algorithm1()),
            laliga::dirty_table(),
            laliga::constraints(),
        )
    }

    #[test]
    fn repair_then_explain_loop() {
        let mut s = session();
        let r = s.repair();
        assert_eq!(r.changes.len(), 2);
        let cell = laliga::cell_of_interest(s.table());
        let cons = s.explain_constraints(cell).unwrap();
        assert_eq!(cons.ranking.top().unwrap().label, "C3");
        assert_eq!(s.history().len(), 1);
    }

    #[test]
    fn removing_the_top_constraint_changes_the_repair_path() {
        // Demo scenario: act on the explanation by removing C3; the repair
        // still happens (via C1∧C2) but the explanation shifts.
        let mut s = session();
        let cell = laliga::cell_of_interest(s.table());
        let removed = s.remove_constraint("C3").unwrap();
        assert_eq!(removed.name, "C3");
        assert_eq!(s.constraints().len(), 3);
        let cons = s.explain_constraints(cell).unwrap();
        // With C3 gone, C1 and C2 carry the repair equally (1/2 each).
        assert_eq!(cons.exact[0].1.to_string(), "1/2"); // C1
        assert_eq!(cons.exact[1].1.to_string(), "1/2"); // C2
    }

    #[test]
    fn editing_a_cell_affects_the_next_repair() {
        // Fix t5[City] by hand; C1 then has nothing to do and the repair
        // touches only t5[Country].
        let mut s = session();
        let city = s.table().schema().id("City");
        let old = s.set_cell(CellRef::new(4, city), Value::str("Madrid"));
        assert_eq!(old, Value::str("Capital"));
        let r = s.repair();
        assert_eq!(r.changes.len(), 1);
        assert_eq!(r.changes[0].cell.attr, s.table().schema().id("Country"));
    }

    #[test]
    fn upsert_replaces_by_name() {
        let mut s = session();
        let replacement = trex_constraints::parse_dc_named(
            "C3: !(t1.League = t2.League & t1.Year != t2.Year)",
            "C3",
        )
        .unwrap();
        s.upsert_constraint(replacement.clone());
        assert_eq!(s.constraints().len(), 4);
        assert_eq!(
            s.constraints()
                .iter()
                .find(|d| d.name == "C3")
                .unwrap()
                .predicates,
            replacement.predicates
        );
        // And adding a brand-new one grows the set.
        let extra = trex_constraints::parse_dc_named("C5: !(t1.Place < 1)", "C5").unwrap();
        s.upsert_constraint(extra);
        assert_eq!(s.constraints().len(), 5);
    }

    #[test]
    fn history_records_actions() {
        let mut s = session();
        let city = s.table().schema().id("City");
        s.set_cell(CellRef::new(4, city), Value::str("Madrid"));
        s.remove_constraint("C4");
        s.repair();
        let actions: Vec<&str> = s.history().iter().map(|h| h.action.as_str()).collect();
        assert_eq!(actions.len(), 3);
        assert!(actions[0].starts_with("set t5["));
        assert_eq!(actions[1], "remove constraint C4");
        assert_eq!(actions[2], "repair");
        assert_eq!(s.history()[2].cells_repaired, 1);
    }

    #[test]
    fn suggestions_exclude_constraints_already_in_the_session() {
        let s = session();
        let suggestions = s.suggest_constraints(50);
        assert!(!suggestions.is_empty());
        // None of the suggestions equals C1..C4 (up to predicate text).
        let have: Vec<String> = s
            .constraints()
            .iter()
            .map(|d| {
                let mut p: Vec<String> = d.predicates.iter().map(|x| x.to_string()).collect();
                p.sort();
                p.join(" & ")
            })
            .collect();
        for sug in &suggestions {
            let mut p: Vec<String> = sug.predicates.iter().map(|x| x.to_string()).collect();
            p.sort();
            assert!(
                !have.contains(&p.join(" & ")),
                "{sug} duplicates a session DC"
            );
            assert!(sug.name.starts_with('S'));
        }
        // Cap respected.
        assert!(s.suggest_constraints(2).len() <= 2);
    }

    #[test]
    fn session_threads_affect_explanations_deterministically() {
        let s = session();
        assert_eq!(s.threads(), 1);
        let s = s.with_config(ExecConfig::new().with_threads(2));
        assert_eq!(s.threads(), 2);
        let cell = laliga::cell_of_interest(s.table());
        let cfg = SamplingConfig {
            samples: 400,
            seed: 3,
        };
        let a = s.explain_cells_masked(cell, MaskMode::Null, cfg).unwrap();
        let b = s.explain_cells_masked(cell, MaskMode::Null, cfg).unwrap();
        assert_eq!(a.values, b.values);
        assert_eq!(a.ranking.top().unwrap().label, "t5[League]");
    }

    #[test]
    fn session_violations_match_direct_detection_at_any_thread_count() {
        let s = session();
        let serial = s.violations().unwrap();
        assert!(!serial.is_empty(), "the demo table starts dirty");
        let mut s = s.with_config(ExecConfig::new().with_threads(4));
        assert_eq!(s.violations().unwrap(), serial);
        // Fixing the table empties the list.
        let r = s.repair();
        for c in &r.changes {
            s.set_cell(c.cell, c.to.clone());
        }
        assert!(s.violations().unwrap().is_empty());
    }

    #[test]
    fn session_schedule_pin_is_serial_identical() {
        let a = session().with_config(
            ExecConfig::new()
                .with_threads(4)
                .with_schedule(Schedule::PlayerSharded),
        );
        let b = session();
        assert_eq!(a.schedule(), Some(Schedule::PlayerSharded));
        assert_eq!(b.schedule(), None);
        let cell = laliga::cell_of_interest(a.table());
        let cfg = SamplingConfig {
            samples: 200,
            seed: 5,
        };
        // b stays single-threaded (the serial estimates); the
        // player-sharded 4-thread session must reproduce them exactly.
        let sharded = a.explain_cells_masked(cell, MaskMode::Null, cfg).unwrap();
        let serial = b.explain_cells_masked(cell, MaskMode::Null, cfg).unwrap();
        assert_eq!(sharded.values, serial.values);
    }

    #[test]
    fn session_oracle_capacity_preserves_results() {
        let bounded = session().with_config(ExecConfig::new().with_oracle_cap(4));
        let reference = session();
        assert_eq!(bounded.oracle_capacity(), Some(4));
        assert_eq!(reference.oracle_capacity(), None);
        let cell = laliga::cell_of_interest(bounded.table());
        let cons = bounded.explain_constraints(cell).unwrap();
        let want = reference.explain_constraints(cell).unwrap();
        assert_eq!(cons.exact, want.exact);
        let cfg = SamplingConfig {
            samples: 200,
            seed: 5,
        };
        let cells = bounded
            .explain_cells_masked(cell, MaskMode::Null, cfg)
            .unwrap();
        let want = reference
            .explain_cells_masked(cell, MaskMode::Null, cfg)
            .unwrap();
        assert_eq!(cells.values, want.values);
    }

    #[test]
    fn explain_with_stats_reports_oracle_pressure() {
        let bounded = session().with_config(ExecConfig::new().with_oracle_cap(4));
        let cell = laliga::cell_of_interest(bounded.table());
        let (cons, stats) = bounded.explain_constraints_with_stats(cell).unwrap();
        // Identical explanation to the unbounded session...
        let reference = session();
        let (want, unbounded) = reference.explain_constraints_with_stats(cell).unwrap();
        assert_eq!(cons.exact, want.exact);
        // ...but capacity 4 cannot hold the 16 coalition values, so the
        // bounded run must report evictions where the unbounded one
        // reports none.
        assert!(stats.misses > 0);
        assert!(stats.evictions > 0, "capacity 4 must evict: {stats:?}");
        assert_eq!(unbounded.evictions, 0, "{unbounded:?}");
        assert!(unbounded.hits > 0, "the rational pass re-reads the memo");
    }

    #[test]
    fn session_backend_and_batching_reproduce_the_inline_path() {
        let remote = session()
            .with_config(ExecConfig::new().with_oracle_batch(8))
            .with_oracle_backend(Box::new(trex_repair::MockRemoteRepair::mock(
                Box::new(laliga::algorithm1()),
                std::time::Duration::ZERO,
            )));
        let reference = session();
        assert_eq!(
            remote.oracle_backend().unwrap().name(),
            "remote(algorithm1)"
        );
        assert!(reference.oracle_backend().is_none());
        let cell = laliga::cell_of_interest(remote.table());
        let (cons, _, capped) = remote.explain_constraints_with_batch_stats(cell).unwrap();
        let (want, _, inline) = reference
            .explain_constraints_with_batch_stats(cell)
            .unwrap();
        assert_eq!(cons.exact, want.exact);
        assert_eq!(capped.queries, inline.queries, "same misses either way");
        assert!(
            capped.batches > inline.batches,
            "a batch cap of 8 splits the 16-coalition dispatch: {capped:?} vs {inline:?}"
        );
        let cfg = SamplingConfig {
            samples: 200,
            seed: 5,
        };
        let cells = remote
            .explain_cells_masked(cell, MaskMode::Null, cfg)
            .unwrap();
        let want = reference
            .explain_cells_masked(cell, MaskMode::Null, cfg)
            .unwrap();
        assert_eq!(cells.values, want.values);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_session_setters_delegate_to_the_config() {
        // Each legacy setter must behave exactly like editing the config.
        let mut s = session();
        s.set_threads(4);
        s.set_schedule(Schedule::WorkStealing);
        s.set_oracle_capacity(32);
        assert_eq!(
            s.config(),
            ExecConfig::new()
                .with_threads(4)
                .with_schedule(Schedule::WorkStealing)
                .with_oracle_cap(32)
        );
    }

    #[test]
    fn session_analyze_is_clean_on_the_demo_program_and_flags_injected_noise() {
        let mut s = session();
        let a = s.analyze();
        assert!(
            !a.has_errors(),
            "demo program should lint clean: {:?}",
            a.diagnostics
        );
        assert_eq!(a.plans.len(), 4);
        // Inject a dead constraint: flagged, and with pruning enabled the
        // violation list is unchanged.
        let before = s.violations().unwrap();
        s.upsert_constraint(
            trex_constraints::parse_dc_named(
                "Dead: !(t1.Year < t2.Year & t1.Year > t2.Year)",
                "Dead",
            )
            .unwrap(),
        );
        let a = s.analyze();
        assert!(a
            .verdicts
            .iter()
            .any(|v| v.name == "Dead" && v.unviolable.is_some()));
        let unpruned = s.violations().unwrap();
        assert_eq!(unpruned, before, "a dead DC contributes no witnesses");
        let s = s.with_config(ExecConfig::new().with_prune_redundant(true).with_threads(2));
        assert_eq!(
            s.violations().unwrap(),
            before,
            "pruned scan is byte-identical"
        );
    }

    #[test]
    fn removing_missing_constraint_is_none() {
        let mut s = session();
        assert!(s.remove_constraint("C9").is_none());
        assert_eq!(s.history().len(), 0);
    }

    #[test]
    fn session_is_send_and_sync() {
        // The server shares one Session behind an RwLock across request
        // threads; both auto traits are load-bearing.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Session>();
    }

    #[test]
    fn shared_cache_pools_answers_across_requests() {
        let s = session();
        let cell = laliga::cell_of_interest(s.table());
        let _ = s.explain_constraints(cell).unwrap();
        let first = s.oracle_cache().stats();
        assert!(first.misses > 0);
        // A second identical request must be answered from the shared
        // cache: no new misses, only hits.
        let _ = s.explain_constraints(cell).unwrap();
        let second = s.oracle_cache().stats();
        assert_eq!(second.misses, first.misses, "{second:?}");
        assert!(second.hits > first.hits, "{second:?}");
        // A request pinning a different oracle capacity gets a private
        // oracle and leaves the shared cache untouched.
        let exec = ExecConfig::new().with_oracle_cap(4);
        let _ = s.explain_constraints_for(cell, &exec).unwrap();
        assert_eq!(s.oracle_cache().stats(), second);
    }

    #[test]
    fn mutations_flush_the_shared_cache_and_explanations_stay_fresh() {
        // Satellite: a long-lived session that mutates its inputs must not
        // serve explanations influenced by pre-mutation oracle state. The
        // cache keys already embed the inputs; this pins the flush *and*
        // the freshness of the answers.
        let mut s = session();
        let cell = laliga::cell_of_interest(s.table());
        let before = s.explain_constraints(cell).unwrap();
        assert_eq!(before.ranking.top().unwrap().label, "C3");
        assert!(!s.oracle_cache().is_empty());

        // Remove C3: the cache flushes, and the re-explanation matches a
        // fresh session over the mutated inputs exactly.
        s.remove_constraint("C3").unwrap();
        assert!(s.oracle_cache().is_empty(), "mutation must flush");
        let after = s.explain_constraints(cell).unwrap();
        let mut fresh = session();
        fresh.remove_constraint("C3").unwrap();
        let want = fresh.explain_constraints(cell).unwrap();
        assert_eq!(after.exact, want.exact);
        assert_eq!(after.exact[0].1.to_string(), "1/2");

        // Same for a cell edit (different table fingerprint)...
        let year = s.table().schema().id("Year");
        s.set_cell(CellRef::new(0, year), Value::Int(1999));
        assert!(s.oracle_cache().is_empty(), "set_cell must flush");
        // ...and a constraint upsert.
        let _ = s.explain_constraints(cell);
        s.upsert_constraint(trex_constraints::parse_dc_named("C9: !(t1.Place < 1)", "C9").unwrap());
        assert!(s.oracle_cache().is_empty(), "upsert must flush");
    }

    #[test]
    fn concurrent_explanations_match_solo_runs_bit_for_bit() {
        // Satellite: N threads hammer one shared Session (one shared
        // coalition cache) with mixed seeds and schedules; every result
        // must equal the same request run solo against its own session.
        let s = session().with_config(ExecConfig::new().with_threads(2));
        let cell = laliga::cell_of_interest(s.table());
        let requests: Vec<ExecConfig> = vec![
            ExecConfig::new().with_threads(1).with_seed(3),
            ExecConfig::new()
                .with_threads(2)
                .with_schedule(Schedule::PlayerSharded)
                .with_seed(3),
            ExecConfig::new()
                .with_threads(2)
                .with_schedule(Schedule::BudgetSplit)
                .with_seed(11),
            ExecConfig::new()
                .with_threads(3)
                .with_schedule(Schedule::WorkStealing)
                .with_seed(7),
            ExecConfig::new().with_threads(4).with_seed(11),
            ExecConfig::new()
                .with_threads(1)
                .with_schedule(Schedule::PlayerSharded)
                .with_seed(7),
        ];
        let shared: Vec<CellExplanation> = std::thread::scope(|scope| {
            let handles: Vec<_> = requests
                .iter()
                .map(|exec| {
                    let s = &s;
                    scope.spawn(move || {
                        let cfg = SamplingConfig {
                            samples: 120,
                            seed: exec.seed().unwrap(),
                        };
                        s.explain_cells_masked_for(cell, MaskMode::Null, cfg, exec)
                            .unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (exec, got) in requests.iter().zip(&shared) {
            let solo = session().with_config(*exec);
            let cfg = SamplingConfig {
                samples: 120,
                seed: exec.seed().unwrap(),
            };
            let want = solo
                .explain_cells_masked(cell, MaskMode::Null, cfg)
                .unwrap();
            assert_eq!(got.values, want.values, "{exec:?}");
            assert_eq!(got.players, want.players, "{exec:?}");
        }
        assert!(
            s.oracle_cache().stats().hits > 0,
            "the hammer must actually share the cache"
        );
    }
}
