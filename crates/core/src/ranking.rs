//! Rankings — the deliverable of an explanation.
//!
//! "T-REx then ranks the constraints and table cells according to their
//! importance in the repair of this cell" (§1). A [`Ranking`] is a list of
//! labeled Shapley values sorted from most to least influential, with the
//! intensity buckets the demo GUI renders as shades of green ("the darker
//! the color, the more influencing", §3).

use std::fmt;

/// One ranked item.
#[derive(Debug, Clone, PartialEq)]
pub struct RankEntry {
    /// Human-readable label (`"C3"`, `"t5[League]"`, …).
    pub label: String,
    /// The (exact or estimated) Shapley value.
    pub value: f64,
    /// Standard error of the estimate, when the value came from sampling.
    pub std_error: Option<f64>,
}

/// A sorted ranking of players by Shapley value.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Ranking {
    entries: Vec<RankEntry>,
}

/// Number of intensity buckets (0 = no influence … 4 = strongest).
pub const INTENSITY_LEVELS: usize = 5;

impl Ranking {
    /// Build a ranking from `(label, value)` pairs; sorts by value
    /// descending, ties broken by label for determinism.
    pub fn new(items: Vec<(String, f64)>) -> Self {
        Self::with_errors(items.into_iter().map(|(l, v)| (l, v, None)).collect())
    }

    /// Build a ranking with optional standard errors.
    pub fn with_errors(items: Vec<(String, f64, Option<f64>)>) -> Self {
        let mut entries: Vec<RankEntry> = items
            .into_iter()
            .map(|(label, value, std_error)| RankEntry {
                label,
                value,
                std_error,
            })
            .collect();
        entries.sort_by(|a, b| {
            b.value
                .partial_cmp(&a.value)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.label.cmp(&b.label))
        });
        Ranking { entries }
    }

    /// The sorted entries, most influential first.
    pub fn entries(&self) -> &[RankEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff the ranking is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry for `label`, if present.
    pub fn get(&self, label: &str) -> Option<&RankEntry> {
        self.entries.iter().find(|e| e.label == label)
    }

    /// 0-based rank of `label` (0 = most influential).
    pub fn rank_of(&self, label: &str) -> Option<usize> {
        self.entries.iter().position(|e| e.label == label)
    }

    /// The top entry, if any.
    pub fn top(&self) -> Option<&RankEntry> {
        self.entries.first()
    }

    /// The first `k` entries.
    pub fn top_k(&self, k: usize) -> &[RankEntry] {
        &self.entries[..k.min(self.entries.len())]
    }

    /// Intensity bucket of an entry: 0 for non-positive values, else
    /// `1..=4` proportional to the maximum value in the ranking. This is
    /// the "shade of green" of the demo's explanation screen.
    pub fn intensity(&self, entry: &RankEntry) -> usize {
        let max = self.entries.first().map_or(0.0, |e| e.value);
        if entry.value <= 0.0 || max <= 0.0 {
            return 0;
        }
        let frac = entry.value / max;
        // 1..=4
        ((frac * (INTENSITY_LEVELS - 1) as f64).ceil() as usize).clamp(1, INTENSITY_LEVELS - 1)
    }

    /// Sum of all values — for a complete constraint game this is
    /// `v(C) − v(∅)`, i.e. 1.0 when the full constraint set repairs the
    /// cell (efficiency axiom).
    pub fn total(&self) -> f64 {
        self.entries.iter().map(|e| e.value).sum()
    }

    /// Kendall rank-correlation coefficient `τ` between this ranking and
    /// another over their shared labels: +1 = identical order, −1 =
    /// reversed, 0 = unrelated. Pairs tied in either ranking contribute 0
    /// (τ-a convention). Returns `None` with fewer than two shared labels.
    ///
    /// Used to compare attribution methods (e.g. Shapley vs Banzhaf, or
    /// masked vs replacement semantics) — "do they tell the user the same
    /// story?" is a one-number answer.
    pub fn kendall_tau(&self, other: &Ranking) -> Option<f64> {
        let shared: Vec<&RankEntry> = self
            .entries
            .iter()
            .filter(|e| other.get(&e.label).is_some())
            .collect();
        let n = shared.len();
        if n < 2 {
            return None;
        }
        let mut concordant = 0i64;
        let mut discordant = 0i64;
        for i in 0..n {
            for j in (i + 1)..n {
                let a = shared[i].value - shared[j].value;
                let b = other.get(&shared[i].label).unwrap().value
                    - other.get(&shared[j].label).unwrap().value;
                let sign = (a * b).partial_cmp(&0.0);
                match sign {
                    Some(std::cmp::Ordering::Greater) => concordant += 1,
                    Some(std::cmp::Ordering::Less) => discordant += 1,
                    _ => {}
                }
            }
        }
        let pairs = (n * (n - 1) / 2) as f64;
        Some((concordant - discordant) as f64 / pairs)
    }
}

impl fmt::Display for Ranking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, e) in self.entries.iter().enumerate() {
            let bar = "█".repeat(self.intensity(e));
            write!(f, "{:>3}. {:<16} {:+.4}", i + 1, e.label, e.value)?;
            if let Some(se) = e.std_error {
                write!(f, " ± {se:.4}")?;
            }
            writeln!(f, "  {bar}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranking() -> Ranking {
        Ranking::new(vec![
            ("C1".into(), 1.0 / 6.0),
            ("C2".into(), 1.0 / 6.0),
            ("C3".into(), 2.0 / 3.0),
            ("C4".into(), 0.0),
        ])
    }

    #[test]
    fn sorted_descending_with_label_ties() {
        let r = ranking();
        let labels: Vec<&str> = r.entries().iter().map(|e| e.label.as_str()).collect();
        assert_eq!(labels, vec!["C3", "C1", "C2", "C4"]);
        assert_eq!(r.top().unwrap().label, "C3");
    }

    #[test]
    fn rank_and_get() {
        let r = ranking();
        assert_eq!(r.rank_of("C3"), Some(0));
        assert_eq!(r.rank_of("C4"), Some(3));
        assert_eq!(r.rank_of("C9"), None);
        assert!((r.get("C1").unwrap().value - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn intensity_buckets() {
        let r = ranking();
        let by_label = |l: &str| r.intensity(r.get(l).unwrap());
        assert_eq!(by_label("C3"), 4); // the max
        assert_eq!(by_label("C1"), 1); // quarter of max
        assert_eq!(by_label("C4"), 0); // zero influence
    }

    #[test]
    fn negative_values_rank_last_with_zero_intensity() {
        let r = Ranking::new(vec![("a".into(), 0.5), ("b".into(), -0.25)]);
        assert_eq!(r.rank_of("b"), Some(1));
        assert_eq!(r.intensity(r.get("b").unwrap()), 0);
    }

    #[test]
    fn total_reflects_efficiency() {
        let r = ranking();
        assert!((r.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_contains_values_and_bars() {
        let r = ranking();
        let s = r.to_string();
        assert!(s.contains("C3"));
        assert!(s.contains("████"));
        assert!(s.contains("+0.6667"));
    }

    #[test]
    fn display_includes_std_errors_when_present() {
        let r = Ranking::with_errors(vec![("x".into(), 0.5, Some(0.01))]);
        assert!(r.to_string().contains("± 0.0100"));
    }

    #[test]
    fn top_k_clamps() {
        let r = ranking();
        assert_eq!(r.top_k(2).len(), 2);
        assert_eq!(r.top_k(99).len(), 4);
        assert!(Ranking::default().is_empty());
    }

    #[test]
    fn kendall_tau_extremes_and_ties() {
        let a = Ranking::new(vec![
            ("x".into(), 3.0),
            ("y".into(), 2.0),
            ("z".into(), 1.0),
        ]);
        let same = Ranking::new(vec![
            ("x".into(), 30.0),
            ("y".into(), 20.0),
            ("z".into(), 10.0),
        ]);
        let reversed = Ranking::new(vec![
            ("x".into(), 1.0),
            ("y".into(), 2.0),
            ("z".into(), 3.0),
        ]);
        assert_eq!(a.kendall_tau(&same), Some(1.0));
        assert_eq!(a.kendall_tau(&reversed), Some(-1.0));
        // Ties contribute 0: all-equal other gives tau 0.
        let flat = Ranking::new(vec![
            ("x".into(), 1.0),
            ("y".into(), 1.0),
            ("z".into(), 1.0),
        ]);
        assert_eq!(a.kendall_tau(&flat), Some(0.0));
    }

    #[test]
    fn kendall_tau_uses_shared_labels_only() {
        let a = Ranking::new(vec![("x".into(), 2.0), ("y".into(), 1.0)]);
        let b = Ranking::new(vec![
            ("y".into(), 5.0),
            ("x".into(), 9.0),
            ("unrelated".into(), 100.0),
        ]);
        assert_eq!(a.kendall_tau(&b), Some(1.0));
        let disjoint = Ranking::new(vec![("p".into(), 1.0)]);
        assert_eq!(a.kendall_tau(&disjoint), None);
    }

    #[test]
    fn all_zero_ranking_has_zero_intensity() {
        let r = Ranking::new(vec![("a".into(), 0.0), ("b".into(), 0.0)]);
        for e in r.entries() {
            assert_eq!(r.intensity(e), 0);
        }
    }
}
