//! Text renderings of the demo's three screens (Figure 3).
//!
//! The paper's GUI is a web application; per DESIGN.md §2 we substitute
//! deterministic terminal renderings carrying the same content:
//!
//! 1. **Input screen** — the dirty table and the constraint list;
//! 2. **Repair screen** — the repaired table with repaired cells
//!    highlighted as `old → new` (hover-for-old-value becomes inline);
//! 3. **Explanation screen** — constraints and cells "ranked from highest
//!    to lowest in terms of their Shapley value", with intensity bars for
//!    the green shading.

use crate::explain::{CellExplanation, ConstraintExplanation};
use trex_constraints::DenialConstraint;
use trex_table::{CellChange, CellRef, Table};

/// Screen 1: the input — dirty table plus constraints.
pub fn render_input_screen(dirty: &Table, dcs: &[DenialConstraint]) -> String {
    let mut out = String::new();
    out.push_str("=== T-REx: Input ===\n\n");
    out.push_str(&dirty.render());
    out.push_str("\nDenial constraints:\n");
    for dc in dcs {
        out.push_str("  ");
        out.push_str(&dc.to_string());
        out.push('\n');
    }
    out
}

/// Screen 2: the repair — table with each repaired cell shown as
/// `[old → new]`.
pub fn render_repair_screen(dirty: &Table, changes: &[CellChange]) -> String {
    let mut out = String::new();
    out.push_str("=== T-REx: Repair ===\n\n");
    let headers: Vec<String> = dirty.schema().names().map(str::to_string).collect();
    let mut cells: Vec<Vec<String>> = Vec::with_capacity(dirty.num_rows());
    for r in 0..dirty.num_rows() {
        let mut row = Vec::with_capacity(dirty.arity());
        for (a, v) in dirty.row(r).iter().enumerate() {
            let cellref = CellRef::new(r, trex_table::AttrId(a));
            match changes.iter().find(|c| c.cell == cellref) {
                Some(ch) => row.push(format!("[{} → {}]", v, ch.to)),
                None => row.push(v.to_string()),
            }
        }
        cells.push(row);
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in &cells {
        for (i, c) in row.iter().enumerate() {
            widths[i] = widths[i].max(c.chars().count());
        }
    }
    let push_row = |row: &[String], out: &mut String| {
        out.push('|');
        for (c, w) in row.iter().zip(&widths) {
            out.push(' ');
            out.push_str(c);
            for _ in c.chars().count()..*w {
                out.push(' ');
            }
            out.push_str(" |");
        }
        out.push('\n');
    };
    push_row(&headers, &mut out);
    let sep: String = widths
        .iter()
        .map(|w| format!("|{}", "-".repeat(w + 2)))
        .collect::<String>()
        + "|\n";
    out.push_str(&sep);
    for row in &cells {
        push_row(row, &mut out);
    }
    out.push_str(&format!("\n{} cell(s) repaired.\n", changes.len()));
    out
}

/// Screen 3: the explanation — ranked constraints and/or cells.
pub fn render_explanation_screen(
    cell_label: &str,
    constraints: Option<&ConstraintExplanation>,
    cells: Option<&CellExplanation>,
) -> String {
    let mut out = String::new();
    out.push_str(&format!("=== T-REx: Explanation for {cell_label} ===\n"));
    if let Some(c) = constraints {
        out.push_str(&format!(
            "\nConstraint influence (repaired to {}):\n",
            c.target
        ));
        out.push_str(&c.ranking.to_string());
        out.push_str("Exact values: ");
        let parts: Vec<String> = c.exact.iter().map(|(n, r)| format!("{n} = {r}")).collect();
        out.push_str(&parts.join(", "));
        out.push('\n');
    }
    if let Some(ce) = cells {
        out.push_str("\nCell influence (top 10):\n");
        let top = ce.ranking.top_k(10);
        for (i, e) in top.iter().enumerate() {
            let bar = "█".repeat(ce.ranking.intensity(e));
            out.push_str(&format!(
                "{:>3}. {:<14} {:+.4}{}  {}\n",
                i + 1,
                e.label,
                e.value,
                e.std_error.map_or(String::new(), |s| format!(" ± {s:.4}")),
                bar
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explain::Explainer;
    use trex_datagen::laliga;
    use trex_shapley::SamplingConfig;

    #[test]
    fn input_screen_lists_table_and_constraints() {
        let dirty = laliga::dirty_table();
        let dcs = laliga::constraints();
        let s = render_input_screen(&dirty, &dcs);
        assert!(s.contains("Capital"));
        assert!(s.contains("España"));
        assert!(s.contains("C1: !(t1.Team = t2.Team & t1.City != t2.City)"));
        assert!(s.contains("C4:"));
    }

    #[test]
    fn repair_screen_highlights_changes() {
        let dirty = laliga::dirty_table();
        let dcs = laliga::constraints();
        let alg = laliga::algorithm1();
        let result = trex_repair::RepairAlgorithm::repair(&alg, &dcs, &dirty);
        let s = render_repair_screen(&dirty, &result.changes);
        assert!(s.contains("[Capital → Madrid]"));
        assert!(s.contains("[España → Spain]"));
        assert!(s.contains("2 cell(s) repaired."));
    }

    #[test]
    fn explanation_screen_shows_both_rankings() {
        let dirty = laliga::dirty_table();
        let dcs = laliga::constraints();
        let alg = laliga::algorithm1();
        let ex = Explainer::new(&alg);
        let cell = laliga::cell_of_interest(&dirty);
        let cons = ex.explain_constraints(&dcs, &dirty, cell).unwrap();
        let cells = ex
            .explain_cells_sampled(
                &dcs,
                &dirty,
                cell,
                SamplingConfig {
                    samples: 50,
                    seed: 1,
                },
            )
            .unwrap();
        let s = render_explanation_screen("t5[Country]", Some(&cons), Some(&cells));
        assert!(s.contains("t5[Country]"));
        assert!(s.contains("C3 = 2/3"));
        assert!(s.contains("Cell influence"));
        assert!(s.lines().count() > 10);
    }

    #[test]
    fn explanation_screen_with_constraints_only() {
        let dirty = laliga::dirty_table();
        let dcs = laliga::constraints();
        let alg = laliga::algorithm1();
        let ex = Explainer::new(&alg);
        let cell = laliga::cell_of_interest(&dirty);
        let cons = ex.explain_constraints(&dcs, &dirty, cell).unwrap();
        let s = render_explanation_screen("t5[Country]", Some(&cons), None);
        assert!(s.contains("Constraint influence"));
        assert!(!s.contains("Cell influence"));
    }
}
