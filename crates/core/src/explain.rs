//! The explainer — T-REx's front door.
//!
//! Given the black-box repair algorithm, the constraint set, the dirty
//! table, and a repaired cell of interest, [`Explainer`] produces the two
//! rankings of §1: constraints by Shapley value (computed exactly, §2.3)
//! and cells by Shapley value (approximated by permutation sampling, §2.3,
//! or computed exactly on small tables).

use crate::games::{CellGameMasked, CellGameSampled, ConstraintGame, MaskMode};
use crate::ranking::Ranking;
use std::fmt;
use std::sync::Arc;
use trex_constraints::DenialConstraint;
use trex_repair::{
    BatchStats, OracleBackend, OracleCache, RepairAlgorithm, RepairResult, ShardedOracle,
};
use trex_shapley::{
    parallel, shapley_exact, shapley_exact_rational, AnytimeCheckpoint, AnytimeControl, ExecConfig,
    Game, ParallelConfig, Rational, SamplingConfig, Schedule, StochasticGame,
};
use trex_table::{CellRef, Table, Value};

/// Errors an explanation request can produce.
#[derive(Debug, Clone, PartialEq)]
pub enum ExplainError {
    /// The chosen cell is not repaired by the full run — the paper only
    /// explains cells "whose value was changed" (§3).
    CellNotRepaired {
        /// The cell the user selected.
        cell: CellRef,
    },
    /// The cell row/attr is outside the table.
    CellOutOfRange {
        /// The offending reference.
        cell: CellRef,
    },
    /// Exact cell explanation was requested for a table with too many cells.
    TooManyCells {
        /// Number of player cells.
        players: usize,
        /// The exact-solver cap.
        limit: usize,
    },
}

impl fmt::Display for ExplainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExplainError::CellNotRepaired { cell } => {
                write!(
                    f,
                    "cell {cell} is not repaired by the full constraint set; only repaired cells can be explained"
                )
            }
            ExplainError::CellOutOfRange { cell } => write!(f, "cell {cell} is out of range"),
            ExplainError::TooManyCells { players, limit } => write!(
                f,
                "exact cell explanation over {players} cells exceeds the {limit}-player limit; use sampling"
            ),
        }
    }
}

impl std::error::Error for ExplainError {}

/// A constraint explanation: the ranking plus the exact rational values.
#[derive(Debug, Clone)]
pub struct ConstraintExplanation {
    /// Constraints ranked by Shapley value.
    pub ranking: Ranking,
    /// Exact values as rationals (denominator `|C|!`), in constraint order —
    /// only present when the repair oracle is 0/1 (it always is here).
    pub exact: Vec<(String, Rational)>,
    /// The repaired (target) value of the cell of interest.
    pub target: Value,
}

/// Configuration of the adaptive (precision-targeted) cell explanation:
/// instead of a fixed per-player sample count, each cell is sampled in
/// batches until its confidence half-width meets `tolerance` or its
/// `max_samples` budget runs out.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveConfig {
    /// Target half-width of the per-cell confidence interval.
    pub tolerance: f64,
    /// Confidence multiplier (`1.96` ≈ 95%).
    pub z: f64,
    /// Samples per adaptive round, between convergence checks. Under
    /// `Schedule::PlayerSharded` (the auto default once the table has ≥ 4
    /// cells per worker) each cell runs the serial loop, so a round is
    /// exactly `batch` samples; under `Schedule::BudgetSplit` every worker
    /// contributes `batch` samples per round, so a round is
    /// `threads × batch` and convergence is checked that much less often.
    pub batch: usize,
    /// Per-cell cap on total samples across all workers.
    pub max_samples: usize,
    /// Base RNG seed (laddered per player exactly like fixed-budget
    /// sampling).
    pub seed: u64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            tolerance: 0.05,
            z: 1.96,
            batch: 100,
            max_samples: 10_000,
            seed: 0,
        }
    }
}

/// A cell explanation: the ranking over influencing cells.
#[derive(Debug, Clone)]
pub struct CellExplanation {
    /// Cells ranked by (estimated) Shapley value.
    pub ranking: Ranking,
    /// The player cells, index-aligned with `values`.
    pub players: Vec<CellRef>,
    /// Raw values in player order (useful for programmatic consumers).
    pub values: Vec<f64>,
    /// The repaired (target) value of the cell of interest.
    pub target: Value,
}

/// The T-REx explainer.
///
/// Wraps a black-box [`RepairAlgorithm`]; every method treats it purely
/// through repeated repair queries, per the paper's design.
///
/// Cell explanations run on the parallel sampling engine
/// (`trex_shapley::parallel`). The default is one worker, which reproduces
/// the historical serial estimates bit for bit; [`Explainer::with_config`]
/// with [`ExecConfig::with_threads`] opts into multi-core sampling. The
/// work [`Schedule`] defaults to [`Schedule::auto`] over the cell count —
/// player-sharded (serial-identical output at any thread count) when the
/// table has plenty of cells per worker, budget-split (deterministic per
/// `(seed, threads)` pair) otherwise; [`ExecConfig::with_schedule`] pins
/// one explicitly ([`Schedule::WorkStealing`] additionally steals adaptive
/// rounds between workers, see the schedule docs for its determinism
/// contract).
///
/// The memoizing repair oracle behind the coalition games grows with the
/// number of distinct coalition tables visited;
/// [`ExecConfig::with_oracle_cap`] bounds it (entries, second-chance
/// eviction) without changing any result.
///
/// Oracle misses are answered by the wrapped algorithm by default.
/// [`Explainer::with_oracle_backend`] routes them through an
/// [`OracleBackend`] instead — misses then travel in bounded batches
/// ([`ExecConfig::with_oracle_batch`]), concurrent identical coalitions
/// dedup through single-flight, and batch formation orders constraint-game
/// coalitions by the static analyzer's scan-cost estimates. A faithful
/// backend (one honoring [`OracleBackend`]'s contract) never changes any
/// explanation — only who computes it, and how many round trips it takes.
pub struct Explainer<'a> {
    alg: &'a dyn RepairAlgorithm,
    cfg: ExecConfig,
    backend: Option<&'a dyn OracleBackend>,
    cache: Option<Arc<OracleCache>>,
}

impl<'a> Explainer<'a> {
    /// Wrap a repair algorithm (single sampling worker, auto schedule,
    /// default oracle capacity, local oracle dispatch).
    pub fn new(alg: &'a dyn RepairAlgorithm) -> Self {
        Explainer {
            alg,
            cfg: ExecConfig::default(),
            backend: None,
            cache: None,
        }
    }

    /// Answer coalition oracle misses through `backend` — e.g. a
    /// `trex_repair::RemoteRepair` whose per-call latency the batching
    /// layer amortizes — instead of invoking the wrapped algorithm once
    /// per query. The backend must answer exactly what the wrapped
    /// algorithm would ([`OracleBackend`]'s fidelity contract); the
    /// full-table repair that determines a cell's repair target always
    /// runs on the local algorithm.
    pub fn with_oracle_backend(mut self, backend: &'a dyn OracleBackend) -> Self {
        self.backend = Some(backend);
        self
    }

    /// The configured oracle backend, if any.
    pub fn oracle_backend(&self) -> Option<&'a dyn OracleBackend> {
        self.backend
    }

    /// Memoize coalition repairs in `cache` instead of a fresh private
    /// cache per oracle. Several explainers (or several requests against
    /// one long-lived `Session`) sharing one [`OracleCache`] pool their
    /// coalition answers: oracle keys embed the table fingerprint and the
    /// DC-set hash, so entries computed under one `(table, constraints)`
    /// pair can never answer a query for another.
    ///
    /// A shared cache carries its own capacity, so it overrides
    /// [`ExecConfig::with_oracle_cap`] for this explainer.
    pub fn with_oracle_cache(mut self, cache: Arc<OracleCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The shared oracle cache, if one is attached.
    pub fn oracle_cache(&self) -> Option<&Arc<OracleCache>> {
        self.cache.as_ref()
    }

    /// Apply an execution configuration wholesale: thread count, schedule,
    /// and oracle capacity in one value shared with `Session` and the
    /// repair engines. The config's `seed`, if set, is not consumed here —
    /// sampling methods take their seed from the explicit
    /// [`SamplingConfig`] argument.
    pub fn with_config(mut self, cfg: ExecConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// The explainer's execution configuration.
    pub fn config(&self) -> ExecConfig {
        self.cfg
    }

    /// Use `threads` sampling workers for cell explanations (must be ≥ 1;
    /// resolve user input with `trex_shapley::resolve_threads` first).
    #[deprecated(note = "build an ExecConfig and pass it to with_config")]
    pub fn with_threads(self, threads: usize) -> Self {
        let cfg = self.cfg.with_threads(threads);
        self.with_config(cfg)
    }

    /// Pin the all-player sampling schedule instead of letting
    /// [`Schedule::auto`] choose from the cell count.
    #[deprecated(note = "build an ExecConfig and pass it to with_config")]
    pub fn with_schedule(self, schedule: Schedule) -> Self {
        let cfg = self.cfg.with_schedule(schedule);
        self.with_config(cfg)
    }

    /// The configured sampling worker count.
    pub fn threads(&self) -> usize {
        self.cfg.threads()
    }

    /// The pinned schedule, if any (`None` = auto by cell count).
    pub fn schedule(&self) -> Option<Schedule> {
        self.cfg.schedule()
    }

    /// Bound the repair-oracle memo cache to `capacity` entries
    /// (second-chance eviction once full; `0` disables caching entirely).
    /// Explanation results are unchanged at any capacity — a smaller cache
    /// only recomputes more. The default is
    /// `trex_repair::ShardedOracle::DEFAULT_CAPACITY`.
    #[deprecated(note = "build an ExecConfig and pass it to with_config")]
    pub fn with_oracle_capacity(self, capacity: usize) -> Self {
        let cfg = self.cfg.with_oracle_cap(capacity);
        self.with_config(cfg)
    }

    /// The pinned oracle capacity, if any (`None` = the oracle default).
    pub fn oracle_capacity(&self) -> Option<usize> {
        self.cfg.oracle_cap()
    }

    /// Pre-flight static analysis of a constraint program against the table
    /// it is about to explain repairs over (see
    /// [`trex_constraints::analyze_with_table`]). Explanations of a
    /// mistyped or dead constraint are confusingly all-zero; run this first
    /// and surface the diagnostics.
    pub fn analyze(&self, dcs: &[DenialConstraint], table: &Table) -> trex_constraints::Analysis {
        trex_constraints::analyze_with_table(dcs, table)
    }

    /// The schedule an explanation over `players` cells will use.
    fn schedule_for(&self, players: usize) -> Schedule {
        self.cfg
            .schedule()
            .unwrap_or_else(|| Schedule::auto(players, self.threads()))
    }

    /// Whether the batched-dispatch machinery is in play (a batch bound or
    /// a backend is configured) — the only case where computing scan-cost
    /// estimates for batch ordering buys anything.
    fn batching_configured(&self) -> bool {
        self.cfg.oracle_batch().is_some() || self.backend.is_some()
    }

    /// Build a coalition oracle carrying every configured knob: capacity
    /// bound, batch bound, and backend.
    fn build_oracle<'b>(&self) -> ShardedOracle<'b>
    where
        'a: 'b,
    {
        let mut oracle = match &self.cache {
            Some(cache) => ShardedOracle::with_shared_cache(self.alg, Arc::clone(cache)),
            None => match self.cfg.oracle_cap() {
                Some(cap) => ShardedOracle::with_capacity(self.alg, cap),
                None => ShardedOracle::new(self.alg),
            },
        };
        if let Some(batch) = self.cfg.oracle_batch() {
            oracle = oracle.with_batch(batch);
        }
        if let Some(backend) = self.backend {
            oracle = oracle.with_backend(backend);
        }
        oracle
    }

    /// Build the constraint game with this explainer's oracle
    /// configuration. When batching is configured, the static analyzer's
    /// per-DC scan-cost estimates are attached so batch formation orders
    /// coalition scans most-expensive-first.
    fn constraint_game<'b>(
        &self,
        dcs: &'b [DenialConstraint],
        dirty: &'b Table,
        cell: CellRef,
        target: Value,
    ) -> ConstraintGame<'b>
    where
        'a: 'b,
    {
        let game = ConstraintGame::with_oracle(self.build_oracle(), dcs, dirty, cell, target);
        if self.batching_configured() {
            game.with_dc_costs(trex_constraints::scan_cost_estimates(dcs, dirty))
        } else {
            game
        }
    }

    /// Build the masked cell game with this explainer's oracle
    /// configuration.
    fn masked_game<'b>(
        &self,
        dcs: &'b [DenialConstraint],
        dirty: &'b Table,
        cell: CellRef,
        target: Value,
        mode: MaskMode,
    ) -> CellGameMasked<'b>
    where
        'a: 'b,
    {
        CellGameMasked::with_oracle(self.build_oracle(), dcs, dirty, cell, target, mode)
    }

    /// The wrapped algorithm.
    pub fn algorithm(&self) -> &dyn RepairAlgorithm {
        self.alg
    }

    /// Run the full repair (`Alg(C, T^d)`), the step behind the demo's
    /// "Repair" button.
    pub fn repair(&self, dcs: &[DenialConstraint], dirty: &Table) -> RepairResult {
        self.alg.repair(dcs, dirty)
    }

    /// Determine the repair target of `cell`: the clean value the full run
    /// assigns it. Errors if the cell is out of range or not repaired.
    pub fn repair_target(
        &self,
        dcs: &[DenialConstraint],
        dirty: &Table,
        cell: CellRef,
    ) -> Result<Value, ExplainError> {
        if cell.row >= dirty.num_rows() || cell.attr.0 >= dirty.arity() {
            return Err(ExplainError::CellOutOfRange { cell });
        }
        let result = self.alg.repair(dcs, dirty);
        let target = result.clean.get(cell);
        if target == dirty.get(cell) {
            return Err(ExplainError::CellNotRepaired { cell });
        }
        Ok(target.clone())
    }

    /// Explain the influence of each **constraint** on the repair of
    /// `cell`, exactly (subset enumeration over `2^|C|` coalitions, with
    /// oracle memoization). This is the left half of the demo's
    /// explanation screen.
    pub fn explain_constraints(
        &self,
        dcs: &[DenialConstraint],
        dirty: &Table,
        cell: CellRef,
    ) -> Result<ConstraintExplanation, ExplainError> {
        self.explain_constraints_with_stats(dcs, dirty, cell)
            .map(|(explanation, _)| explanation)
    }

    /// [`Explainer::explain_constraints`], also returning the repair-oracle
    /// cache counters the explanation accumulated (hits, misses,
    /// evictions). The stress harness records these as cache-pressure
    /// telemetry; the explanation itself is identical at any oracle
    /// capacity.
    pub fn explain_constraints_with_stats(
        &self,
        dcs: &[DenialConstraint],
        dirty: &Table,
        cell: CellRef,
    ) -> Result<(ConstraintExplanation, trex_repair::OracleStats), ExplainError> {
        self.explain_constraints_with_batch_stats(dcs, dirty, cell)
            .map(|(explanation, stats, _)| (explanation, stats))
    }

    /// [`Explainer::explain_constraints_with_stats`], additionally
    /// returning the oracle's batched-dispatch counters ([`BatchStats`]):
    /// how many backend dispatches ran and how many coalition queries they
    /// carried. Zero unless a solver path evaluated coalitions in batches.
    pub fn explain_constraints_with_batch_stats(
        &self,
        dcs: &[DenialConstraint],
        dirty: &Table,
        cell: CellRef,
    ) -> Result<(ConstraintExplanation, trex_repair::OracleStats, BatchStats), ExplainError> {
        let target = self.repair_target(dcs, dirty, cell)?;
        let game = self.constraint_game(dcs, dirty, cell, target.clone());
        let values = shapley_exact(&game).expect("constraint sets are small");
        let rationals = shapley_exact_rational(&game).expect("constraint sets are small");
        let ranking = Ranking::new(
            values
                .iter()
                .enumerate()
                .map(|(i, v)| (Game::player_label(&game, i), *v))
                .collect(),
        );
        let explanation = ConstraintExplanation {
            ranking,
            exact: rationals
                .into_iter()
                .enumerate()
                .map(|(i, r)| (Game::player_label(&game, i), r))
                .collect(),
            target,
        };
        Ok((explanation, game.oracle_stats(), game.oracle_batch_stats()))
    }

    /// Pairwise **Shapley interaction indices** of the constraints for the
    /// repair of `cell` (extension; Grabisch–Roubens). Positive entries are
    /// complements — the paper's C1/C2, which "contributed as a pair" —
    /// negative entries substitutes (C3 against either of them). Returns
    /// the labeled symmetric matrix in constraint order.
    pub fn constraint_interactions(
        &self,
        dcs: &[DenialConstraint],
        dirty: &Table,
        cell: CellRef,
    ) -> Result<(Vec<String>, Vec<Vec<f64>>), ExplainError> {
        let target = self.repair_target(dcs, dirty, cell)?;
        let game = self.constraint_game(dcs, dirty, cell, target);
        let matrix =
            trex_shapley::shapley_interaction_exact(&game).expect("constraint sets are small");
        let labels = (0..dcs.len())
            .map(|i| Game::player_label(&game, i))
            .collect();
        Ok((labels, matrix))
    }

    /// **Banzhaf** power indices of the constraints (extension): the
    /// unweighted-average-marginal alternative to Shapley. Useful as a
    /// cross-check that the ranking is not an artifact of Shapley's
    /// size weighting.
    pub fn constraint_banzhaf(
        &self,
        dcs: &[DenialConstraint],
        dirty: &Table,
        cell: CellRef,
    ) -> Result<Ranking, ExplainError> {
        let target = self.repair_target(dcs, dirty, cell)?;
        let game = self.constraint_game(dcs, dirty, cell, target);
        let values = trex_shapley::banzhaf_exact(&game).expect("constraint sets are small");
        Ok(Ranking::new(
            values
                .iter()
                .enumerate()
                .map(|(i, v)| (Game::player_label(&game, i), *v))
                .collect(),
        ))
    }

    /// Explain the influence of each **cell** via the sampling algorithm of
    /// §2.3 / Example 2.5 (random-replacement semantics, common random
    /// numbers, per-player permutation sampling).
    pub fn explain_cells_sampled(
        &self,
        dcs: &[DenialConstraint],
        dirty: &Table,
        cell: CellRef,
        config: SamplingConfig,
    ) -> Result<CellExplanation, ExplainError> {
        let target = self.repair_target(dcs, dirty, cell)?;
        let game = CellGameSampled::new(self.alg, dcs, dirty, cell, target.clone());
        let schedule = self.schedule_for(StochasticGame::num_players(&game));
        let estimates = parallel::estimate_all(
            &game,
            ParallelConfig::from_sampling(config, self.threads()).with_schedule(schedule),
        );
        let players = game.players().to_vec();
        let ranking = Ranking::with_errors(
            estimates
                .iter()
                .enumerate()
                .map(|(i, e)| {
                    (
                        StochasticGame::player_label(&game, i),
                        e.value,
                        Some(e.std_error()),
                    )
                })
                .collect(),
        );
        Ok(CellExplanation {
            ranking,
            values: estimates.iter().map(|e| e.value).collect(),
            players,
            target,
        })
    }

    /// Adaptive cell explanation (extension): each cell is sampled under
    /// replacement semantics until its `z`-confidence half-width drops
    /// below `config.tolerance` or its `config.max_samples` budget is
    /// spent, on the parallel engine with this explainer's worker count.
    /// Cells with tight estimates (dummies most of all) stop early; the
    /// budget concentrates on the contested ones.
    ///
    /// Returns the explanation plus one flag per player cell: did that
    /// cell's estimate converge within budget? Deterministic per
    /// `(config.seed, threads)` pair; per-player seeds are laddered exactly
    /// like [`Explainer::explain_cells_sampled`]'s.
    pub fn explain_cells_adaptive(
        &self,
        dcs: &[DenialConstraint],
        dirty: &Table,
        cell: CellRef,
        config: AdaptiveConfig,
    ) -> Result<(CellExplanation, Vec<bool>), ExplainError> {
        let target = self.repair_target(dcs, dirty, cell)?;
        let game = CellGameSampled::new(self.alg, dcs, dirty, cell, target.clone());
        let players = game.players().to_vec();
        let schedule = self.schedule_for(players.len());
        let (estimates, converged): (Vec<_>, Vec<_>) = parallel::estimate_all_adaptive(
            &game,
            config.tolerance,
            config.z,
            config.batch,
            config.max_samples,
            config.seed,
            self.threads(),
            schedule,
        )
        .into_iter()
        .unzip();
        let ranking = Ranking::with_errors(
            estimates
                .iter()
                .enumerate()
                .map(|(i, e)| {
                    (
                        StochasticGame::player_label(&game, i),
                        e.value,
                        Some(e.std_error()),
                    )
                })
                .collect(),
        );
        Ok((
            CellExplanation {
                ranking,
                values: estimates.iter().map(|e| e.value).collect(),
                players,
                target,
            },
            converged,
        ))
    }

    /// Explain cells with the **masked** (null / labeled-null) semantics of
    /// the Shapley definition in §2.2, estimated by shared permutation
    /// walks (`config.samples` permutations, each contributing one marginal
    /// sample to every cell). Deterministic per seed.
    pub fn explain_cells_masked(
        &self,
        dcs: &[DenialConstraint],
        dirty: &Table,
        cell: CellRef,
        mode: MaskMode,
        config: SamplingConfig,
    ) -> Result<CellExplanation, ExplainError> {
        let target = self.repair_target(dcs, dirty, cell)?;
        let game = self.masked_game(dcs, dirty, cell, target.clone(), mode);
        let schedule = self.schedule_for(Game::num_players(&game));
        let estimates = parallel::estimate_all_walk(
            &game,
            ParallelConfig::from_sampling(config, self.threads()).with_schedule(schedule),
        );
        let players = game.players().to_vec();
        let ranking = Ranking::with_errors(
            estimates
                .iter()
                .enumerate()
                .map(|(i, e)| (Game::player_label(&game, i), e.value, Some(e.std_error())))
                .collect(),
        );
        Ok(CellExplanation {
            ranking,
            values: estimates.iter().map(|e| e.value).collect(),
            players,
            target,
        })
    }

    /// Anytime variant of [`Explainer::explain_cells_masked`]: the same
    /// shared-permutation-walk estimator, but `on_checkpoint` observes the
    /// in-progress estimates every `checkpoint_every` walks and can stop
    /// the run early ([`AnytimeControl::Stop`]) — e.g. when a latency
    /// budget expires or the requesting client disconnects.
    ///
    /// Determinism contract: a run that completes (`finished == true`)
    /// returns exactly what [`Explainer::explain_cells_masked`] returns for
    /// the same `(seed, threads, schedule)` — checkpointing never perturbs
    /// the sample stream. A stopped run returns the estimates accumulated
    /// so far (at least one checkpoint's worth).
    ///
    /// The checkpoint's `estimates` are in player order, index-aligned with
    /// the returned explanation's `players`.
    #[allow(clippy::too_many_arguments)] // mirrors explain_cells_masked + the anytime pair
    pub fn explain_cells_masked_anytime(
        &self,
        dcs: &[DenialConstraint],
        dirty: &Table,
        cell: CellRef,
        mode: MaskMode,
        config: SamplingConfig,
        checkpoint_every: usize,
        on_checkpoint: impl FnMut(&AnytimeCheckpoint<'_>) -> AnytimeControl,
    ) -> Result<(CellExplanation, bool), ExplainError> {
        let target = self.repair_target(dcs, dirty, cell)?;
        let game = self.masked_game(dcs, dirty, cell, target.clone(), mode);
        let schedule = self.schedule_for(Game::num_players(&game));
        let (estimates, finished) = parallel::estimate_all_walk_anytime(
            &game,
            ParallelConfig::from_sampling(config, self.threads()).with_schedule(schedule),
            checkpoint_every,
            on_checkpoint,
        );
        let players = game.players().to_vec();
        let ranking = Ranking::with_errors(
            estimates
                .iter()
                .enumerate()
                .map(|(i, e)| (Game::player_label(&game, i), e.value, Some(e.std_error())))
                .collect(),
        );
        Ok((
            CellExplanation {
                ranking,
                values: estimates.iter().map(|e| e.value).collect(),
                players,
                target,
            },
            finished,
        ))
    }

    /// Two-phase cell explanation (extension): a cheap permutation-walk
    /// *screening* pass over all cells, then a *refinement* pass that
    /// re-estimates only the `k` screened leaders with `refine_samples`
    /// per-player samples each. The interactive demo only ever shows the
    /// top of the ranking, so spending the budget there cuts latency
    /// without touching what the user sees.
    ///
    /// Refined entries replace their screened estimates; everything else
    /// keeps the screening value.
    #[allow(clippy::too_many_arguments)]
    pub fn explain_cells_topk(
        &self,
        dcs: &[DenialConstraint],
        dirty: &Table,
        cell: CellRef,
        mode: MaskMode,
        k: usize,
        screen: SamplingConfig,
        refine_samples: usize,
    ) -> Result<CellExplanation, ExplainError> {
        let target = self.repair_target(dcs, dirty, cell)?;
        let game = self.masked_game(dcs, dirty, cell, target.clone(), mode);
        let players = game.players().to_vec();
        let schedule = self.schedule_for(players.len());
        let screened = parallel::estimate_all_walk(
            &game,
            ParallelConfig::from_sampling(screen, self.threads()).with_schedule(schedule),
        );

        // Leaders by screened value.
        let mut order: Vec<usize> = (0..players.len()).collect();
        order.sort_by(|a, b| screened[*b].value.total_cmp(&screened[*a].value));
        let leaders: Vec<usize> = order.into_iter().take(k).collect();

        let mut values: Vec<f64> = screened.iter().map(|e| e.value).collect();
        let mut errors: Vec<f64> = screened.iter().map(|e| e.std_error()).collect();
        for (slot, &p) in leaders.iter().enumerate() {
            let refined = parallel::estimate_player(
                &game,
                p,
                ParallelConfig::new(
                    refine_samples,
                    screen.seed.wrapping_add(1000 + slot as u64),
                    self.threads(),
                ),
            );
            values[p] = refined.value;
            errors[p] = refined.std_error();
        }
        let ranking = Ranking::with_errors(
            values
                .iter()
                .enumerate()
                .map(|(i, v)| (Game::player_label(&game, i), *v, Some(errors[i])))
                .collect(),
        );
        Ok(CellExplanation {
            ranking,
            values,
            players,
            target,
        })
    }

    /// Exact cell explanation (subset enumeration) under masked semantics —
    /// only for tiny tables (≤ [`trex_shapley::MAX_EXACT_PLAYERS`] player
    /// cells), used by tests and the convergence experiment as ground
    /// truth.
    pub fn explain_cells_exact(
        &self,
        dcs: &[DenialConstraint],
        dirty: &Table,
        cell: CellRef,
        mode: MaskMode,
    ) -> Result<CellExplanation, ExplainError> {
        let target = self.repair_target(dcs, dirty, cell)?;
        let game = self.masked_game(dcs, dirty, cell, target.clone(), mode);
        let players = game.players().to_vec();
        if players.len() > trex_shapley::MAX_EXACT_PLAYERS {
            return Err(ExplainError::TooManyCells {
                players: players.len(),
                limit: trex_shapley::MAX_EXACT_PLAYERS,
            });
        }
        let values = shapley_exact(&game).expect("player count checked");
        let ranking = Ranking::new(
            values
                .iter()
                .enumerate()
                .map(|(i, v)| (Game::player_label(&game, i), *v))
                .collect(),
        );
        Ok(CellExplanation {
            ranking,
            values,
            players,
            target,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trex_datagen::laliga;
    use trex_repair::NoOpRepair;
    use trex_table::{AttrId, TableBuilder};

    #[test]
    fn constraint_explanation_matches_figure_1() {
        let dirty = laliga::dirty_table();
        let dcs = laliga::constraints();
        let alg = laliga::algorithm1();
        let ex = Explainer::new(&alg);
        let out = ex
            .explain_constraints(&dcs, &dirty, laliga::cell_of_interest(&dirty))
            .unwrap();
        assert_eq!(out.target, Value::str("Spain"));
        // Ranking: C3 first, C4 last with value 0.
        assert_eq!(out.ranking.top().unwrap().label, "C3");
        assert_eq!(out.ranking.rank_of("C4"), Some(3));
        // Exact rationals: 1/6, 1/6, 2/3, 0.
        let by_name: Vec<(&str, String)> = out
            .exact
            .iter()
            .map(|(n, r)| (n.as_str(), r.to_string()))
            .collect();
        assert_eq!(
            by_name,
            vec![
                ("C1", "1/6".to_string()),
                ("C2", "1/6".to_string()),
                ("C3", "2/3".to_string()),
                ("C4", "0".to_string()),
            ]
        );
    }

    #[test]
    fn unrepaired_cell_is_rejected() {
        let dirty = laliga::dirty_table();
        let dcs = laliga::constraints();
        let alg = laliga::algorithm1();
        let ex = Explainer::new(&alg);
        // t1[Team] is never repaired.
        let cell = CellRef::new(0, AttrId(0));
        let err = ex.explain_constraints(&dcs, &dirty, cell).unwrap_err();
        assert!(matches!(err, ExplainError::CellNotRepaired { .. }));
    }

    #[test]
    fn out_of_range_cell_is_rejected() {
        let dirty = laliga::dirty_table();
        let dcs = laliga::constraints();
        let alg = laliga::algorithm1();
        let ex = Explainer::new(&alg);
        let err = ex
            .explain_constraints(&dcs, &dirty, CellRef::new(99, AttrId(0)))
            .unwrap_err();
        assert!(matches!(err, ExplainError::CellOutOfRange { .. }));
    }

    #[test]
    fn noop_algorithm_repairs_nothing_so_nothing_to_explain() {
        let dirty = laliga::dirty_table();
        let dcs = laliga::constraints();
        let ex = Explainer::new(&NoOpRepair);
        let err = ex
            .explain_constraints(&dcs, &dirty, laliga::cell_of_interest(&dirty))
            .unwrap_err();
        assert!(matches!(err, ExplainError::CellNotRepaired { .. }));
    }

    #[test]
    fn sampled_cell_explanation_properties() {
        // The replacement-semantics estimator (Example 2.5 verbatim)
        // measures a *different* game than the §2.2 null-mask definition:
        // an out-of-coalition League cell is redrawn as "La Liga" 5 times
        // out of 6, so C3 usually fires anyway and the influence mass
        // shifts to the Country witness cells that make "Spain" win the
        // vote. (EXPERIMENTS.md E4 records this side-by-side; the paper's
        // Example-2.4 ranking is asserted on the masked game below.)
        let dirty = laliga::dirty_table();
        let dcs = laliga::constraints();
        let alg = laliga::algorithm1();
        let ex = Explainer::new(&alg);
        let out = ex
            .explain_cells_sampled(
                &dcs,
                &dirty,
                laliga::cell_of_interest(&dirty),
                SamplingConfig {
                    samples: 800,
                    seed: 7,
                },
            )
            .unwrap();
        // Example 1.1: t1[Place] has no influence — exactly zero (no
        // constraint path from Place to Country under any replacement).
        let place = out.ranking.get("t1[Place]").unwrap();
        assert_eq!(place.value, 0.0);
        assert_eq!(place.std_error, Some(0.0));
        // The top of the ranking is a Country witness cell: one of the
        // (League, Country) = (La Liga, Spain) rows t1, t2, t3, t6.
        let top = out.ranking.top().unwrap();
        assert!(
            ["t1[Country]", "t2[Country]", "t3[Country]", "t6[Country]"]
                .contains(&top.label.as_str()),
            "unexpected top cell {}",
            top.label
        );
        // Every Country witness strictly beats every Place cell.
        for w in ["t1[Country]", "t2[Country]", "t3[Country]", "t6[Country]"] {
            for p in ["t1[Place]", "t2[Place]", "t3[Place]"] {
                assert!(
                    out.ranking.get(w).unwrap().value > out.ranking.get(p).unwrap().value,
                    "{w} vs {p}"
                );
            }
        }
    }

    #[test]
    fn masked_cell_explanation_reproduces_example_2_4_ranking() {
        // Example 2.4's headline claims, under the definition (null-mask)
        // semantics the example's counting argument uses:
        //   1. t5[League] has the highest Shapley value of all cells;
        //   2. t1[Place] has none (dummy player);
        //   3. t5[League] is more influential than t6[City] (Example 1.1).
        let dirty = laliga::dirty_table();
        let dcs = laliga::constraints();
        let alg = laliga::algorithm1();
        let ex = Explainer::new(&alg);
        let out = ex
            .explain_cells_masked(
                &dcs,
                &dirty,
                laliga::cell_of_interest(&dirty),
                MaskMode::Null,
                SamplingConfig {
                    samples: 600,
                    seed: 3,
                },
            )
            .unwrap();
        assert_eq!(out.ranking.top().unwrap().label, "t5[League]");
        assert_eq!(out.ranking.get("t1[Place]").unwrap().value, 0.0);
        let league = out.ranking.get("t5[League]").unwrap().value;
        let t6city = out.ranking.get("t6[City]").unwrap().value;
        assert!(league > t6city, "{league} vs {t6city}");
    }

    #[test]
    fn masked_cell_explanation_agrees_on_the_top_cell() {
        let dirty = laliga::dirty_table();
        let dcs = laliga::constraints();
        let alg = laliga::algorithm1();
        let ex = Explainer::new(&alg);
        let out = ex
            .explain_cells_masked(
                &dcs,
                &dirty,
                laliga::cell_of_interest(&dirty),
                MaskMode::Null,
                SamplingConfig {
                    samples: 300,
                    seed: 11,
                },
            )
            .unwrap();
        assert_eq!(out.ranking.top().unwrap().label, "t5[League]");
        assert_eq!(out.players.len(), 35);
        assert_eq!(out.values.len(), 35);
    }

    #[test]
    fn exact_cell_explanation_on_a_tiny_table() {
        // 2x3 table: 5 player cells — exact enumeration feasible.
        let t = TableBuilder::new()
            .str_columns(["League", "Country", "Pad"])
            .str_row(["L", "Spain", "p"])
            .str_row(["L", "España", "q"])
            .build();
        let dcs =
            trex_constraints::parse_dcs("C3: !(t1.League = t2.League & t1.Country != t2.Country)")
                .unwrap();
        let alg = trex_repair::RuleRepair::new(vec![trex_repair::Rule::new(
            "C3",
            trex_repair::FixAction::MostCommon {
                attr: "Country".into(),
            },
        )]);
        let ex = Explainer::new(&alg);
        let cell = CellRef::new(1, t.schema().id("Country"));
        let out = ex
            .explain_cells_exact(&dcs, &t, cell, MaskMode::Null)
            .unwrap();
        assert_eq!(out.target, Value::str("Spain"));
        // The three cells that matter: t1[League], t1[Country], t2[League].
        assert!(out.ranking.get("t1[League]").unwrap().value > 0.0);
        assert!(out.ranking.get("t1[Country]").unwrap().value > 0.0);
        assert!(out.ranking.get("t2[League]").unwrap().value > 0.0);
        // Pad cells are dummies.
        assert_eq!(out.ranking.get("t1[Pad]").unwrap().value, 0.0);
        assert_eq!(out.ranking.get("t2[Pad]").unwrap().value, 0.0);
        // Efficiency: the grand coalition repairs the cell.
        assert!((out.values.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn exact_cell_explanation_rejects_large_tables() {
        let dirty = laliga::dirty_table();
        let dcs = laliga::constraints();
        let alg = laliga::algorithm1();
        let ex = Explainer::new(&alg);
        let err = ex
            .explain_cells_exact(
                &dcs,
                &dirty,
                laliga::cell_of_interest(&dirty),
                MaskMode::Null,
            )
            .unwrap_err();
        assert!(matches!(
            err,
            ExplainError::TooManyCells { players: 35, .. }
        ));
    }

    #[test]
    fn topk_refinement_keeps_the_headline_and_tightens_errors() {
        let dirty = laliga::dirty_table();
        let dcs = laliga::constraints();
        let alg = laliga::algorithm1();
        let ex = Explainer::new(&alg);
        let cell = laliga::cell_of_interest(&dirty);
        let screen = SamplingConfig {
            samples: 150,
            seed: 9,
        };
        let cheap = ex
            .explain_cells_masked(&dcs, &dirty, cell, MaskMode::Null, screen)
            .unwrap();
        let refined = ex
            .explain_cells_topk(&dcs, &dirty, cell, MaskMode::Null, 3, screen, 1200)
            .unwrap();
        // The headline survives refinement.
        assert_eq!(refined.ranking.top().unwrap().label, "t5[League]");
        // The refined leader has a tighter standard error than screening.
        let cheap_se = cheap.ranking.get("t5[League]").unwrap().std_error.unwrap();
        let refined_se = refined
            .ranking
            .get("t5[League]")
            .unwrap()
            .std_error
            .unwrap();
        assert!(refined_se < cheap_se, "{refined_se} vs {cheap_se}");
        // Non-leaders keep their screened values.
        assert_eq!(
            refined.ranking.get("t1[Place]").unwrap().value,
            cheap.ranking.get("t1[Place]").unwrap().value
        );
    }

    #[test]
    fn constraint_interactions_show_c1_c2_complementarity() {
        let dirty = laliga::dirty_table();
        let dcs = laliga::constraints();
        let alg = laliga::algorithm1();
        let ex = Explainer::new(&alg);
        let (labels, m) = ex
            .constraint_interactions(&dcs, &dirty, laliga::cell_of_interest(&dirty))
            .unwrap();
        assert_eq!(labels, vec!["C1", "C2", "C3", "C4"]);
        assert!(m[0][1] > 0.0, "C1×C2 complementary: {}", m[0][1]);
        assert!(m[0][2] < 0.0, "C1×C3 substitutes: {}", m[0][2]);
        assert_eq!(m[0][3], 0.0, "C4 is a dummy");
        assert_eq!(m[0][1], m[1][0], "matrix symmetric");
    }

    #[test]
    fn constraint_banzhaf_agrees_on_the_ordering() {
        let dirty = laliga::dirty_table();
        let dcs = laliga::constraints();
        let alg = laliga::algorithm1();
        let ex = Explainer::new(&alg);
        let bz = ex
            .constraint_banzhaf(&dcs, &dirty, laliga::cell_of_interest(&dirty))
            .unwrap();
        // Same ordering as Shapley: C3 ≻ C1 = C2 ≻ C4, with the known
        // exact Banzhaf values (3/4, 1/4, 1/4, 0).
        assert_eq!(bz.top().unwrap().label, "C3");
        assert!((bz.get("C3").unwrap().value - 0.75).abs() < 1e-12);
        assert!((bz.get("C1").unwrap().value - 0.25).abs() < 1e-12);
        assert!((bz.get("C2").unwrap().value - 0.25).abs() < 1e-12);
        assert_eq!(bz.get("C4").unwrap().value, 0.0);
    }

    #[test]
    fn multithreaded_explainer_is_deterministic_and_keeps_the_headline() {
        let dirty = laliga::dirty_table();
        let dcs = laliga::constraints();
        let alg = laliga::algorithm1();
        let cell = laliga::cell_of_interest(&dirty);
        let cfg = SamplingConfig {
            samples: 600,
            seed: 3,
        };
        let run = |threads: usize| {
            Explainer::new(&alg)
                .with_config(ExecConfig::new().with_threads(threads))
                .explain_cells_masked(&dcs, &dirty, cell, MaskMode::Null, cfg)
                .unwrap()
        };
        // threads = 1 reproduces the serial estimates bit for bit.
        let serial = Explainer::new(&alg)
            .explain_cells_masked(&dcs, &dirty, cell, MaskMode::Null, cfg)
            .unwrap();
        let one = run(1);
        assert_eq!(serial.values, one.values);
        // A fixed (seed, threads) pair is reproducible, and the paper's
        // headline ranking survives the re-chunked sample streams.
        let a = run(4);
        let b = run(4);
        assert_eq!(a.values, b.values);
        assert_eq!(a.ranking.top().unwrap().label, "t5[League]");
        assert_eq!(a.ranking.get("t1[Place]").unwrap().value, 0.0);
    }

    #[test]
    fn adaptive_explanation_converges_dummies_early_and_is_deterministic() {
        let dirty = laliga::dirty_table();
        let dcs = laliga::constraints();
        let alg = laliga::algorithm1();
        let cell = laliga::cell_of_interest(&dirty);
        let config = AdaptiveConfig {
            tolerance: 0.08,
            batch: 40,
            max_samples: 400,
            ..AdaptiveConfig::default()
        };
        let ex = Explainer::new(&alg).with_config(ExecConfig::new().with_threads(2));
        let (a, conv_a) = ex
            .explain_cells_adaptive(&dcs, &dirty, cell, config)
            .unwrap();
        let (b, conv_b) = ex
            .explain_cells_adaptive(&dcs, &dirty, cell, config)
            .unwrap();
        assert_eq!(a.values, b.values, "deterministic per (seed, threads)");
        assert_eq!(conv_a, conv_b);
        // t1[Place] is a dummy: zero variance, so it converges in the
        // minimum number of rounds with a zero estimate.
        let place = a.ranking.get("t1[Place]").unwrap();
        assert_eq!(place.value, 0.0);
        let place_idx = a
            .players
            .iter()
            .position(|c| *c == CellRef::new(0, dirty.schema().id("Place")))
            .unwrap();
        assert!(conv_a[place_idx], "dummy cells stop early");
    }

    #[test]
    fn explainer_config_accessors_and_defaults() {
        let alg = laliga::algorithm1();
        assert_eq!(Explainer::new(&alg).threads(), 1);
        assert_eq!(Explainer::new(&alg).schedule(), None);
        assert_eq!(Explainer::new(&alg).oracle_capacity(), None);
        assert_eq!(Explainer::new(&alg).config(), ExecConfig::default());
        let cfg = ExecConfig::new()
            .with_threads(8)
            .with_schedule(Schedule::PlayerSharded)
            .with_oracle_cap(64);
        let ex = Explainer::new(&alg).with_config(cfg);
        assert_eq!(ex.threads(), 8);
        assert_eq!(ex.schedule(), Some(Schedule::PlayerSharded));
        assert_eq!(ex.oracle_capacity(), Some(64));
        assert_eq!(ex.config(), cfg);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_explainer_shims_delegate_to_the_config() {
        // Each legacy builder must behave exactly like editing the config.
        let alg = laliga::algorithm1();
        assert_eq!(Explainer::new(&alg).with_threads(8).threads(), 8);
        assert_eq!(
            Explainer::new(&alg)
                .with_schedule(Schedule::PlayerSharded)
                .schedule(),
            Some(Schedule::PlayerSharded)
        );
        assert_eq!(
            Explainer::new(&alg)
                .with_oracle_capacity(64)
                .oracle_capacity(),
            Some(64)
        );
        // Shims and with_config land on the same ExecConfig.
        let chained = Explainer::new(&alg)
            .with_threads(2)
            .with_schedule(Schedule::WorkStealing)
            .with_oracle_capacity(16);
        let direct = ExecConfig::new()
            .with_threads(2)
            .with_schedule(Schedule::WorkStealing)
            .with_oracle_cap(16);
        assert_eq!(chained.config(), direct);
    }

    #[test]
    fn bounded_oracle_capacity_does_not_change_any_explanation() {
        // The bounded-memory acceptance criterion end to end: a tiny
        // eviction-thrashing capacity (and a disabled cache) must reproduce
        // the default explainer's output exactly, constraints and cells.
        let dirty = laliga::dirty_table();
        let dcs = laliga::constraints();
        let alg = laliga::algorithm1();
        let cell = laliga::cell_of_interest(&dirty);
        let cfg = SamplingConfig {
            samples: 300,
            seed: 3,
        };
        let reference_cons = Explainer::new(&alg)
            .explain_constraints(&dcs, &dirty, cell)
            .unwrap();
        let reference_cells = Explainer::new(&alg)
            .explain_cells_masked(&dcs, &dirty, cell, MaskMode::Null, cfg)
            .unwrap();
        for capacity in [0usize, 3, 17, 1 << 20] {
            let ex = Explainer::new(&alg).with_config(ExecConfig::new().with_oracle_cap(capacity));
            let cons = ex.explain_constraints(&dcs, &dirty, cell).unwrap();
            assert_eq!(cons.exact, reference_cons.exact, "capacity {capacity}");
            let cells = ex
                .explain_cells_masked(&dcs, &dirty, cell, MaskMode::Null, cfg)
                .unwrap();
            assert_eq!(cells.values, reference_cells.values, "capacity {capacity}");
        }
    }

    #[test]
    fn batched_and_backend_explanations_match_the_plain_path() {
        // A faithful backend plus any batch bound must reproduce the
        // default explainer byte for byte — constraints and cells — while
        // actually routing misses through the backend.
        let dirty = laliga::dirty_table();
        let dcs = laliga::constraints();
        let alg = laliga::algorithm1();
        let cell = laliga::cell_of_interest(&dirty);
        let cfg = SamplingConfig {
            samples: 120,
            seed: 3,
        };
        let reference_cons = Explainer::new(&alg)
            .explain_constraints(&dcs, &dirty, cell)
            .unwrap();
        let reference_cells = Explainer::new(&alg)
            .explain_cells_masked(&dcs, &dirty, cell, MaskMode::Null, cfg)
            .unwrap();
        let remote =
            trex_repair::MockRemoteRepair::mock(laliga::algorithm1(), std::time::Duration::ZERO);
        for batch in [1usize, 7, 64] {
            let ex = Explainer::new(&alg)
                .with_config(ExecConfig::new().with_oracle_batch(batch))
                .with_oracle_backend(&remote);
            assert_eq!(ex.config().oracle_batch(), Some(batch));
            assert_eq!(ex.oracle_backend().unwrap().name(), "remote(algorithm1)");
            let (cons, _, batch_stats) = ex
                .explain_constraints_with_batch_stats(&dcs, &dirty, cell)
                .unwrap();
            assert_eq!(cons.exact, reference_cons.exact, "batch {batch}");
            assert!(batch_stats.batches > 0, "misses must travel in batches");
            let cells = ex
                .explain_cells_masked(&dcs, &dirty, cell, MaskMode::Null, cfg)
                .unwrap();
            assert_eq!(cells.values, reference_cells.values, "batch {batch}");
        }
        assert!(remote.calls() > 0, "the backend answered real queries");
    }

    #[test]
    fn work_stealing_explanations_are_thread_count_invariant() {
        // The stealing schedule end to end: the adaptive explanation is
        // identical at every thread count (its serial reference is the
        // round-laddered estimator, pinned in trex-shapley).
        let dirty = laliga::dirty_table();
        let dcs = laliga::constraints();
        let alg = laliga::algorithm1();
        let cell = laliga::cell_of_interest(&dirty);
        let config = AdaptiveConfig {
            tolerance: 0.1,
            batch: 30,
            max_samples: 240,
            ..AdaptiveConfig::default()
        };
        let run = |threads: usize| {
            Explainer::new(&alg)
                .with_config(
                    ExecConfig::new()
                        .with_threads(threads)
                        .with_schedule(Schedule::WorkStealing),
                )
                .explain_cells_adaptive(&dcs, &dirty, cell, config)
                .unwrap()
        };
        let (serial, serial_conv) = run(1);
        for threads in [2usize, 4] {
            let (multi, multi_conv) = run(threads);
            assert_eq!(serial.values, multi.values, "threads {threads}");
            assert_eq!(serial_conv, multi_conv, "threads {threads}");
        }
        // The dummy cell still pins to zero under the round ladder.
        assert_eq!(serial.ranking.get("t1[Place]").unwrap().value, 0.0);
    }

    #[test]
    fn player_sharded_explanations_are_serial_identical_at_any_thread_count() {
        // The stronger contract of Schedule::PlayerSharded, end to end:
        // the multi-threaded explanation *is* the single-threaded one.
        let dirty = laliga::dirty_table();
        let dcs = laliga::constraints();
        let alg = laliga::algorithm1();
        let cell = laliga::cell_of_interest(&dirty);
        let cfg = SamplingConfig {
            samples: 200,
            seed: 3,
        };
        let run = |threads: usize| {
            Explainer::new(&alg)
                .with_config(
                    ExecConfig::new()
                        .with_threads(threads)
                        .with_schedule(Schedule::PlayerSharded),
                )
                .explain_cells_masked(&dcs, &dirty, cell, MaskMode::Null, cfg)
                .unwrap()
        };
        let serial = run(1);
        for threads in [2usize, 4] {
            assert_eq!(serial.values, run(threads).values, "threads {threads}");
        }
        // Same for the replacement-semantics per-player estimator.
        let run_sampled = |threads: usize| {
            Explainer::new(&alg)
                .with_config(
                    ExecConfig::new()
                        .with_threads(threads)
                        .with_schedule(Schedule::PlayerSharded),
                )
                .explain_cells_sampled(
                    &dcs,
                    &dirty,
                    cell,
                    SamplingConfig {
                        samples: 60,
                        seed: 7,
                    },
                )
                .unwrap()
        };
        let serial = run_sampled(1);
        for threads in [2usize, 4] {
            assert_eq!(
                serial.values,
                run_sampled(threads).values,
                "threads {threads}"
            );
        }
    }

    #[test]
    fn player_sharded_adaptive_is_serial_identical() {
        let dirty = laliga::dirty_table();
        let dcs = laliga::constraints();
        let alg = laliga::algorithm1();
        let cell = laliga::cell_of_interest(&dirty);
        let config = AdaptiveConfig {
            tolerance: 0.1,
            batch: 30,
            max_samples: 240,
            ..AdaptiveConfig::default()
        };
        let run = |threads: usize| {
            Explainer::new(&alg)
                .with_config(
                    ExecConfig::new()
                        .with_threads(threads)
                        .with_schedule(Schedule::PlayerSharded),
                )
                .explain_cells_adaptive(&dcs, &dirty, cell, config)
                .unwrap()
        };
        let (serial, serial_conv) = run(1);
        for threads in [2usize, 4] {
            let (multi, multi_conv) = run(threads);
            assert_eq!(serial.values, multi.values, "threads {threads}");
            assert_eq!(serial_conv, multi_conv, "threads {threads}");
        }
    }

    #[test]
    fn error_messages_are_informative() {
        let cell = CellRef::new(4, AttrId(2));
        let e1 = ExplainError::CellNotRepaired { cell };
        assert!(e1.to_string().contains("not repaired"));
        let e2 = ExplainError::TooManyCells {
            players: 100,
            limit: 24,
        };
        assert!(e2.to_string().contains("100"));
    }

    #[test]
    fn anytime_completed_run_matches_batch_explain_bit_for_bit() {
        let dirty = laliga::dirty_table();
        let dcs = laliga::constraints();
        let alg = laliga::algorithm1();
        let cell = laliga::cell_of_interest(&dirty);
        let config = SamplingConfig {
            samples: 150,
            seed: 9,
        };
        for schedule in [
            Schedule::PlayerSharded,
            Schedule::BudgetSplit,
            Schedule::WorkStealing,
        ] {
            let ex = Explainer::new(&alg)
                .with_config(ExecConfig::new().with_threads(2).with_schedule(schedule));
            let batch = ex
                .explain_cells_masked(&dcs, &dirty, cell, MaskMode::Null, config)
                .unwrap();
            let mut checkpoints = 0usize;
            let (anytime, finished) = ex
                .explain_cells_masked_anytime(
                    &dcs,
                    &dirty,
                    cell,
                    MaskMode::Null,
                    config,
                    40,
                    |cp| {
                        checkpoints += 1;
                        assert_eq!(cp.estimates.len(), batch.players.len());
                        assert!(cp.estimates.iter().all(|e| e.value.is_finite()));
                        trex_shapley::AnytimeControl::Continue
                    },
                )
                .unwrap();
            assert!(finished, "{schedule:?}");
            assert!(checkpoints >= 3, "{schedule:?}: {checkpoints}");
            assert_eq!(anytime.values, batch.values, "{schedule:?}");
            assert_eq!(anytime.players, batch.players, "{schedule:?}");
        }
    }
}
