//! Minimal CSV reader/writer.
//!
//! The paper's demo loads tables scraped from Wikipedia; our workloads are
//! shipped as CSV-shaped text. This module implements RFC-4180-style parsing
//! (quoted fields, embedded commas/quotes/newlines) without external
//! dependencies, plus a writer that round-trips with the reader.
//!
//! Empty unquoted fields parse as [`Value::Null`]; quoted empty fields (`""`)
//! parse as the empty string for `Str` columns, preserving the
//! null-vs-empty-string distinction the cell game depends on.

use crate::schema::Schema;
use crate::table::Table;
use crate::value::{DType, Value};
use std::fmt;

/// Error from CSV parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// Record had a different number of fields than the header.
    ArityMismatch {
        /// 1-based line number of the record.
        line: usize,
        /// Fields found.
        got: usize,
        /// Fields expected.
        expected: usize,
    },
    /// A field failed to parse at its column type.
    BadField {
        /// 1-based line number of the record.
        line: usize,
        /// Column name.
        column: String,
        /// Error message.
        message: String,
    },
    /// A quote was opened but never closed.
    UnterminatedQuote,
    /// Input had no header line.
    Empty,
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::ArityMismatch {
                line,
                got,
                expected,
            } => {
                write!(f, "line {line}: expected {expected} fields, got {got}")
            }
            CsvError::BadField {
                line,
                column,
                message,
            } => {
                write!(f, "line {line}, column {column}: {message}")
            }
            CsvError::UnterminatedQuote => write!(f, "unterminated quoted field"),
            CsvError::Empty => write!(f, "empty CSV input"),
        }
    }
}

impl std::error::Error for CsvError {}

/// One parsed field: the text plus whether it was quoted (to distinguish
/// `""` from an absent value).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Field {
    text: String,
    quoted: bool,
}

/// Split raw CSV text into records of fields.
fn parse_records(input: &str) -> Result<Vec<Vec<Field>>, CsvError> {
    let mut records = Vec::new();
    let mut record: Vec<Field> = Vec::new();
    let mut field = String::new();
    let mut quoted = false;
    let mut in_quotes = false;
    let mut chars = input.chars().peekable();

    macro_rules! end_field {
        () => {{
            record.push(Field {
                text: std::mem::take(&mut field),
                quoted,
            });
            #[allow(unused_assignments)]
            {
                quoted = false;
            }
        }};
    }

    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                other => field.push(other),
            }
        } else {
            match c {
                '"' if field.is_empty() && !quoted => {
                    in_quotes = true;
                    quoted = true;
                }
                ',' => end_field!(),
                '\r' => {
                    if chars.peek() == Some(&'\n') {
                        chars.next();
                    }
                    end_field!();
                    records.push(std::mem::take(&mut record));
                }
                '\n' => {
                    end_field!();
                    records.push(std::mem::take(&mut record));
                }
                other => field.push(other),
            }
        }
    }
    if in_quotes {
        return Err(CsvError::UnterminatedQuote);
    }
    if !field.is_empty() || quoted || !record.is_empty() {
        end_field!();
        records.push(record);
    }
    Ok(records)
}

/// Parse CSV text into a table.
///
/// The first record is the header. Column types are given by `dtypes`
/// (matched positionally); pass all-`Str` via [`read_csv_strings`] when types
/// are unknown.
pub fn read_csv(input: &str, dtypes: &[DType]) -> Result<Table, CsvError> {
    let records = parse_records(input)?;
    let mut iter = records.into_iter();
    let header = iter.next().ok_or(CsvError::Empty)?;
    if header.len() != dtypes.len() {
        return Err(CsvError::ArityMismatch {
            line: 1,
            got: header.len(),
            expected: dtypes.len(),
        });
    }
    let schema = Schema::new(header.iter().zip(dtypes).map(|(f, d)| (f.text.clone(), *d)));
    let mut table = Table::empty(schema);
    for (i, rec) in iter.enumerate() {
        let line = i + 2;
        if rec.len() != dtypes.len() {
            return Err(CsvError::ArityMismatch {
                line,
                got: rec.len(),
                expected: dtypes.len(),
            });
        }
        let mut row = Vec::with_capacity(rec.len());
        for (j, f) in rec.iter().enumerate() {
            let v = if f.text.is_empty() && f.quoted && dtypes[j] == DType::Str {
                Value::Str(String::new())
            } else {
                Value::parse_as(&f.text, dtypes[j]).map_err(|e| CsvError::BadField {
                    line,
                    column: table.schema().attr(crate::schema::AttrId(j)).name.clone(),
                    message: e.to_string(),
                })?
            };
            row.push(v);
        }
        table.push_row(row);
    }
    Ok(table)
}

/// Parse CSV with every column typed as `Str`.
pub fn read_csv_strings(input: &str) -> Result<Table, CsvError> {
    let first_line = input.lines().next().ok_or(CsvError::Empty)?;
    let arity = parse_records(first_line)?
        .first()
        .map(|r| r.len())
        .ok_or(CsvError::Empty)?;
    read_csv(input, &vec![DType::Str; arity])
}

fn escape_field(s: &str, force_quote: bool) -> String {
    if force_quote || s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
        out
    } else {
        s.to_string()
    }
}

/// Serialize a table to CSV text (header + records, `\n` separators).
///
/// Nulls serialize to empty unquoted fields; empty strings to `""`, so
/// [`read_csv`] with the same dtypes round-trips.
pub fn write_csv(table: &Table) -> String {
    let mut out = String::new();
    let names: Vec<&str> = table.schema().names().collect();
    for (i, n) in names.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&escape_field(n, false));
    }
    out.push('\n');
    for r in 0..table.num_rows() {
        for (j, v) in table.row(r).iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            match v {
                Value::Null => {}
                Value::Str(s) => out.push_str(&escape_field(s, s.is_empty())),
                other => out.push_str(&other.render()),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrId;
    use crate::table::CellRef;

    #[test]
    fn basic_parse() {
        let t = read_csv("A,B\nx,1\ny,2\n", &[DType::Str, DType::Int]).unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.value(0, AttrId(0)), &Value::str("x"));
        assert_eq!(t.value(1, AttrId(1)), &Value::int(2));
    }

    #[test]
    fn quoted_fields_with_commas_and_quotes() {
        let t = read_csv_strings("A,B\n\"a,b\",\"say \"\"hi\"\"\"\n").unwrap();
        assert_eq!(t.value(0, AttrId(0)), &Value::str("a,b"));
        assert_eq!(t.value(0, AttrId(1)), &Value::str("say \"hi\""));
    }

    #[test]
    fn embedded_newline_in_quoted_field() {
        let t = read_csv_strings("A\n\"line1\nline2\"\n").unwrap();
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.value(0, AttrId(0)), &Value::str("line1\nline2"));
    }

    #[test]
    fn crlf_line_endings() {
        let t = read_csv("A,B\r\nx,1\r\n", &[DType::Str, DType::Int]).unwrap();
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.value(0, AttrId(1)), &Value::int(1));
    }

    #[test]
    fn empty_field_is_null_but_quoted_empty_is_empty_string() {
        let t = read_csv_strings("A,B\n,\"\"\n").unwrap();
        assert_eq!(t.value(0, AttrId(0)), &Value::Null);
        assert_eq!(t.value(0, AttrId(1)), &Value::Str(String::new()));
    }

    #[test]
    fn arity_mismatch_reports_line() {
        let err = read_csv("A,B\nx\n", &[DType::Str, DType::Str]).unwrap_err();
        assert_eq!(
            err,
            CsvError::ArityMismatch {
                line: 2,
                got: 1,
                expected: 2
            }
        );
    }

    #[test]
    fn bad_int_reports_column() {
        let err = read_csv("A,N\nx,notanint\n", &[DType::Str, DType::Int]).unwrap_err();
        match err {
            CsvError::BadField { line, column, .. } => {
                assert_eq!(line, 2);
                assert_eq!(column, "N");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn unterminated_quote_is_an_error() {
        assert_eq!(
            read_csv_strings("A\n\"oops\n").unwrap_err(),
            CsvError::UnterminatedQuote
        );
    }

    #[test]
    fn empty_input_is_an_error() {
        assert_eq!(read_csv_strings("").unwrap_err(), CsvError::Empty);
    }

    #[test]
    fn missing_trailing_newline_still_parses_last_record() {
        let t = read_csv("A\nx", &[DType::Str]).unwrap();
        assert_eq!(t.num_rows(), 1);
    }

    #[test]
    fn write_read_roundtrip_with_tricky_values() {
        let schema = Schema::new([("A", DType::Str), ("N", DType::Int), ("F", DType::Float)]);
        let mut t = Table::from_rows(
            schema,
            vec![
                vec![Value::str("plain"), Value::int(1), Value::float(2.5)],
                vec![Value::str("com,ma"), Value::Null, Value::float(-0.125)],
                vec![Value::Str(String::new()), Value::int(-7), Value::Null],
                vec![Value::str("qu\"ote"), Value::int(0), Value::float(1e10)],
            ],
        );
        t.set(CellRef::new(0, AttrId(0)), Value::str("multi\nline"));
        let text = write_csv(&t);
        let t2 = read_csv(&text, &[DType::Str, DType::Int, DType::Float]).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn header_only_gives_empty_table() {
        let t = read_csv("A,B\n", &[DType::Str, DType::Str]).unwrap();
        assert_eq!(t.num_rows(), 0);
        assert_eq!(t.arity(), 2);
    }
}
