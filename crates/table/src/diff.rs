//! Table diffs.
//!
//! A repair algorithm maps `T^d` to `T^c`; the diff between them is the set
//! of *repaired cells* — the blue cells of Figure 2b. Diffs are the unit the
//! explanation layer works with: the user selects one [`CellChange`] to
//! explain, and repair-quality metrics compare a diff against a ground-truth
//! diff.

use crate::table::{CellRef, Table};
use crate::value::Value;
use std::fmt;

/// One repaired cell: where, and the before/after values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellChange {
    /// The cell that changed.
    pub cell: CellRef,
    /// Value in the dirty table `T^d`.
    pub from: Value,
    /// Value in the clean table `T^c`.
    pub to: Value,
}

impl fmt::Display for CellChange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} → {}", self.cell, self.from, self.to)
    }
}

/// Compute the cell-level diff `dirty → clean`.
///
/// Both tables must have the same shape (same arity and row count); repair
/// algorithms in this workspace never add or drop rows, matching the paper's
/// cell-update repair model.
///
/// # Panics
/// Panics on shape mismatch.
pub fn diff(dirty: &Table, clean: &Table) -> Vec<CellChange> {
    assert_eq!(dirty.arity(), clean.arity(), "arity mismatch in diff");
    assert_eq!(
        dirty.num_rows(),
        clean.num_rows(),
        "row count mismatch in diff"
    );
    let mut out = Vec::new();
    for cell in dirty.cells() {
        let a = dirty.get(cell);
        let b = clean.get(cell);
        if a != b {
            out.push(CellChange {
                cell,
                from: a.clone(),
                to: b.clone(),
            });
        }
    }
    out
}

/// Apply a diff to a copy of `table`.
pub fn apply(table: &Table, changes: &[CellChange]) -> Table {
    let mut out = table.clone();
    for ch in changes {
        out.set(ch.cell, ch.to.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrId, Schema};
    use crate::value::DType;

    fn t(vals: &[&str]) -> Table {
        let schema = Schema::new([("A", DType::Str), ("B", DType::Str)]);
        Table::from_rows(
            schema,
            vals.chunks(2)
                .map(|c| vec![Value::str(c[0]), Value::str(c[1])])
                .collect(),
        )
    }

    #[test]
    fn diff_finds_changed_cells() {
        let a = t(&["x", "y", "p", "q"]);
        let b = t(&["x", "z", "p", "q"]);
        let d = diff(&a, &b);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].cell, CellRef::new(0, AttrId(1)));
        assert_eq!(d[0].from, Value::str("y"));
        assert_eq!(d[0].to, Value::str("z"));
    }

    #[test]
    fn identical_tables_have_empty_diff() {
        let a = t(&["x", "y"]);
        assert!(diff(&a, &a.clone()).is_empty());
    }

    #[test]
    fn null_transitions_are_changes() {
        let a = t(&["x", "y"]);
        let mut b = a.clone();
        b.set(CellRef::new(0, AttrId(0)), Value::Null);
        let d = diff(&a, &b);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].to, Value::Null);
    }

    #[test]
    fn apply_reconstructs_clean_table() {
        let a = t(&["x", "y", "p", "q"]);
        let b = t(&["m", "y", "p", "n"]);
        let d = diff(&a, &b);
        assert_eq!(apply(&a, &d), b);
    }

    #[test]
    #[should_panic(expected = "row count mismatch")]
    fn shape_mismatch_panics() {
        let a = t(&["x", "y"]);
        let b = t(&["x", "y", "p", "q"]);
        let _ = diff(&a, &b);
    }

    #[test]
    fn change_display_is_readable() {
        let ch = CellChange {
            cell: CellRef::new(4, AttrId(2)),
            from: Value::str("España"),
            to: Value::str("Spain"),
        };
        assert_eq!(ch.to_string(), "t5[2]: España → Spain");
    }
}
