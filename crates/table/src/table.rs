//! The in-memory table.
//!
//! [`Table`] is a row-major, dynamically-typed relation. It is the `T^d` /
//! `T^c` of the paper: the repair algorithms consume one and produce another,
//! and the cell-level Shapley game produces *masked* variants of the dirty
//! table in which every cell outside a coalition is replaced by null
//! (definition of §2.2) or by a random draw from the column distribution
//! (sampling algorithm of §2.3).
//!
//! Cells are addressed by [`CellRef`] — a `(row, attribute)` pair. The
//! *vectorization* of a table (Example 2.5: `x_T = (t1[Team], t1[City], …)`)
//! corresponds to enumerating cells in row-major order, which is exactly the
//! order of [`Table::cells`].

use crate::schema::{AttrId, Schema};
use crate::value::Value;
use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Address of a single cell: row index + attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellRef {
    /// Zero-based row index.
    pub row: usize,
    /// Attribute (column) id.
    pub attr: AttrId,
}

impl CellRef {
    /// Construct a cell reference.
    pub fn new(row: usize, attr: AttrId) -> Self {
        CellRef { row, attr }
    }

    /// Flat row-major index of this cell in a table of arity `arity`.
    ///
    /// This is the position of the cell in the paper's vectorized table
    /// `x_T`, and the canonical player index of the cell in the cell game.
    pub fn flat_index(&self, arity: usize) -> usize {
        self.row * arity + self.attr.0
    }

    /// Inverse of [`CellRef::flat_index`].
    pub fn from_flat(index: usize, arity: usize) -> Self {
        CellRef {
            row: index / arity,
            attr: AttrId(index % arity),
        }
    }
}

impl fmt::Display for CellRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}[{}]", self.row + 1, self.attr.0)
    }
}

/// A row-major, dynamically-typed relation with a fixed [`Schema`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    schema: Schema,
    rows: Vec<Vec<Value>>,
}

impl Table {
    /// An empty table over `schema`.
    pub fn empty(schema: Schema) -> Self {
        Table {
            schema,
            rows: Vec::new(),
        }
    }

    /// Build a table from rows.
    ///
    /// # Panics
    /// Panics if any row's arity differs from the schema's.
    pub fn from_rows(schema: Schema, rows: Vec<Vec<Value>>) -> Self {
        for (i, r) in rows.iter().enumerate() {
            assert!(
                r.len() == schema.arity(),
                "row {i} has arity {} but schema has {}",
                r.len(),
                schema.arity()
            );
        }
        Table { schema, rows }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.schema.arity()
    }

    /// Number of cells (`rows × arity`), the size of the vectorized table.
    pub fn num_cells(&self) -> usize {
        self.num_rows() * self.arity()
    }

    /// `true` iff the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics on arity mismatch.
    pub fn push_row(&mut self, row: Vec<Value>) {
        assert!(
            row.len() == self.schema.arity(),
            "row arity {} != schema arity {}",
            row.len(),
            self.schema.arity()
        );
        self.rows.push(row);
    }

    /// Borrow a row's cells.
    pub fn row(&self, i: usize) -> &[Value] {
        &self.rows[i]
    }

    /// Borrow a cell value.
    pub fn get(&self, cell: CellRef) -> &Value {
        &self.rows[cell.row][cell.attr.0]
    }

    /// Convenience: borrow by `(row, attr)`.
    pub fn value(&self, row: usize, attr: AttrId) -> &Value {
        &self.rows[row][attr.0]
    }

    /// Overwrite a cell value, returning the previous value.
    pub fn set(&mut self, cell: CellRef, v: Value) -> Value {
        std::mem::replace(&mut self.rows[cell.row][cell.attr.0], v)
    }

    /// Iterate all cell references in row-major (vectorization) order.
    pub fn cells(&self) -> impl Iterator<Item = CellRef> + '_ {
        let arity = self.arity();
        (0..self.num_rows()).flat_map(move |r| (0..arity).map(move |a| CellRef::new(r, AttrId(a))))
    }

    /// Iterate `(CellRef, &Value)` in row-major order.
    pub fn cells_with_values(&self) -> impl Iterator<Item = (CellRef, &Value)> {
        self.rows.iter().enumerate().flat_map(|(r, row)| {
            row.iter()
                .enumerate()
                .map(move |(a, v)| (CellRef::new(r, AttrId(a)), v))
        })
    }

    /// The vectorized table `x_T` of Example 2.5: all cell values in
    /// row-major order.
    pub fn vectorize(&self) -> Vec<Value> {
        self.rows.iter().flatten().cloned().collect()
    }

    /// Rebuild a table from a vectorization over the same schema.
    ///
    /// # Panics
    /// Panics if `values.len()` is not a multiple of the schema arity.
    pub fn from_vector(schema: Schema, values: Vec<Value>) -> Self {
        let arity = schema.arity();
        assert!(arity > 0, "cannot devectorize into a zero-arity schema");
        assert!(
            values.len().is_multiple_of(arity),
            "vector length {} is not a multiple of arity {arity}",
            values.len()
        );
        let mut rows = Vec::with_capacity(values.len() / arity);
        let mut it = values.into_iter();
        while let Some(first) = it.next() {
            let mut row = Vec::with_capacity(arity);
            row.push(first);
            for _ in 1..arity {
                row.push(it.next().expect("length checked above"));
            }
            rows.push(row);
        }
        Table { schema, rows }
    }

    /// A copy of this table in which every cell in `mask` (given as flat
    /// row-major indices with `true` = *keep*) retains its value and every
    /// other cell is replaced by `Value::Null`.
    ///
    /// This is the coalition table `S ⊆ T^d` of the paper's cell game, where
    /// `∀ t_j[C] ∈ T^d \ S. t_j[C] = null`.
    ///
    /// # Panics
    /// Panics if `mask.len() != self.num_cells()`.
    pub fn masked_keep(&self, mask: &[bool]) -> Table {
        assert_eq!(mask.len(), self.num_cells(), "mask length mismatch");
        let arity = self.arity();
        let rows = self
            .rows
            .iter()
            .enumerate()
            .map(|(r, row)| {
                row.iter()
                    .enumerate()
                    .map(|(a, v)| {
                        if mask[r * arity + a] {
                            v.clone()
                        } else {
                            Value::Null
                        }
                    })
                    .collect()
            })
            .collect();
        Table {
            schema: self.schema.clone(),
            rows,
        }
    }

    /// Column `attr` as a slice-like iterator.
    pub fn column(&self, attr: AttrId) -> impl Iterator<Item = &Value> {
        self.rows.iter().map(move |r| &r[attr.0])
    }

    /// A deterministic 64-bit fingerprint of the table contents (schema
    /// shape + all values). Used by the memoizing repair oracle to key
    /// coalition tables.
    pub fn fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.schema.arity().hash(&mut h);
        for name in self.schema.names() {
            name.hash(&mut h);
        }
        self.rows.len().hash(&mut h);
        for row in &self.rows {
            for v in row {
                v.hash(&mut h);
            }
        }
        h.finish()
    }

    /// Pretty-print with column headers; nulls render as `∅`.
    pub fn render(&self) -> String {
        let headers: Vec<String> = self.schema.names().map(str::to_string).collect();
        let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|row| row.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            out.push('|');
            for (c, w) in cells.iter().zip(widths) {
                out.push(' ');
                out.push_str(c);
                for _ in c.chars().count()..*w {
                    out.push(' ');
                }
                out.push_str(" |");
            }
            out.push('\n');
        };
        fmt_row(&headers, &widths, &mut out);
        out.push('|');
        for w in &widths {
            out.push_str(&"-".repeat(w + 2));
            out.push('|');
        }
        out.push('\n');
        for row in &rendered {
            fmt_row(row, &widths, &mut out);
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DType;

    fn small() -> Table {
        let schema = Schema::new([("A", DType::Str), ("N", DType::Int)]);
        Table::from_rows(
            schema,
            vec![
                vec![Value::str("x"), Value::int(1)],
                vec![Value::str("y"), Value::int(2)],
            ],
        )
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = small();
        let c = CellRef::new(1, AttrId(0));
        assert_eq!(t.get(c), &Value::str("y"));
        let old = t.set(c, Value::str("z"));
        assert_eq!(old, Value::str("y"));
        assert_eq!(t.get(c), &Value::str("z"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = small();
        t.push_row(vec![Value::int(1)]);
    }

    #[test]
    fn vectorize_order_is_row_major() {
        let t = small();
        let v = t.vectorize();
        assert_eq!(
            v,
            vec![
                Value::str("x"),
                Value::int(1),
                Value::str("y"),
                Value::int(2)
            ]
        );
        let t2 = Table::from_vector(t.schema().clone(), v);
        assert_eq!(t, t2);
    }

    #[test]
    fn flat_index_roundtrip() {
        let t = small();
        for (i, c) in t.cells().enumerate() {
            assert_eq!(c.flat_index(t.arity()), i);
            assert_eq!(CellRef::from_flat(i, t.arity()), c);
        }
    }

    #[test]
    fn masked_keep_nulls_out_cells() {
        let t = small();
        let m = t.masked_keep(&[true, false, false, true]);
        assert_eq!(m.get(CellRef::new(0, AttrId(0))), &Value::str("x"));
        assert_eq!(m.get(CellRef::new(0, AttrId(1))), &Value::Null);
        assert_eq!(m.get(CellRef::new(1, AttrId(0))), &Value::Null);
        assert_eq!(m.get(CellRef::new(1, AttrId(1))), &Value::int(2));
        // original untouched
        assert_eq!(t.get(CellRef::new(0, AttrId(1))), &Value::int(1));
    }

    #[test]
    fn fingerprint_changes_with_content() {
        let t = small();
        let mut t2 = t.clone();
        assert_eq!(t.fingerprint(), t2.fingerprint());
        t2.set(CellRef::new(0, AttrId(1)), Value::int(99));
        assert_ne!(t.fingerprint(), t2.fingerprint());
    }

    #[test]
    fn render_contains_headers_and_null_marker() {
        let mut t = small();
        t.set(CellRef::new(0, AttrId(0)), Value::Null);
        let s = t.render();
        assert!(s.contains("A"));
        assert!(s.contains("N"));
        assert!(s.contains("∅"));
    }

    #[test]
    fn cells_with_values_matches_get() {
        let t = small();
        for (c, v) in t.cells_with_values() {
            assert_eq!(t.get(c), v);
        }
        assert_eq!(t.cells_with_values().count(), 4);
    }

    #[test]
    fn column_iterates_one_attr() {
        let t = small();
        let col: Vec<&Value> = t.column(AttrId(1)).collect();
        assert_eq!(col, vec![&Value::int(1), &Value::int(2)]);
    }

    #[test]
    fn cellref_display_is_one_based() {
        assert_eq!(CellRef::new(4, AttrId(2)).to_string(), "t5[2]");
    }
}
