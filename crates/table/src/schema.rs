//! Table schemas.
//!
//! A [`Schema`] is an ordered list of named, typed attributes. Attributes are
//! addressed either by name (user-facing, e.g. in denial-constraint syntax)
//! or by [`AttrId`] (internal, an index into the schema), so the hot paths of
//! constraint evaluation never hash strings.

use crate::value::DType;
use std::fmt;

/// Index of an attribute within a [`Schema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttrId(pub usize);

impl AttrId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A named, typed attribute (column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Column name; unique within a schema.
    pub name: String,
    /// Declared value type for non-null cells.
    pub dtype: DType,
}

impl Attribute {
    /// Construct an attribute.
    pub fn new(name: impl Into<String>, dtype: DType) -> Self {
        Attribute {
            name: name.into(),
            dtype,
        }
    }
}

/// An ordered collection of attributes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    attrs: Vec<Attribute>,
}

impl Schema {
    /// Build a schema from `(name, dtype)` pairs.
    ///
    /// # Panics
    /// Panics if two attributes share a name — schemas are tiny and built at
    /// setup time, so a loud failure beats a `Result` in every signature.
    pub fn new<I, S>(attrs: I) -> Self
    where
        I: IntoIterator<Item = (S, DType)>,
        S: Into<String>,
    {
        let attrs: Vec<Attribute> = attrs
            .into_iter()
            .map(|(n, d)| Attribute::new(n, d))
            .collect();
        for i in 0..attrs.len() {
            for j in (i + 1)..attrs.len() {
                assert!(
                    attrs[i].name != attrs[j].name,
                    "duplicate attribute name {:?}",
                    attrs[i].name
                );
            }
        }
        Schema { attrs }
    }

    /// All-string schema: convenient for CSV-shaped data.
    pub fn of_strings<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Schema::new(names.into_iter().map(|n| (n, DType::Str)))
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// `true` iff the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Attribute at `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range (an `AttrId` is only ever produced by
    /// resolving against this schema).
    pub fn attr(&self, id: AttrId) -> &Attribute {
        &self.attrs[id.0]
    }

    /// Resolve an attribute name to its id.
    pub fn resolve(&self, name: &str) -> Option<AttrId> {
        self.attrs.iter().position(|a| a.name == name).map(AttrId)
    }

    /// Resolve, panicking with a useful message if absent. For test and
    /// example code where the schema is statically known.
    pub fn id(&self, name: &str) -> AttrId {
        self.resolve(name)
            .unwrap_or_else(|| panic!("no attribute named {name:?} in schema {self}"))
    }

    /// Iterate `(AttrId, &Attribute)`.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &Attribute)> {
        self.attrs.iter().enumerate().map(|(i, a)| (AttrId(i), a))
    }

    /// Attribute names in order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.attrs.iter().map(|a| a.name.as_str())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", a.name, a.dtype)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_by_name() {
        let s = Schema::new([("Team", DType::Str), ("Year", DType::Int)]);
        assert_eq!(s.arity(), 2);
        assert_eq!(s.resolve("Team"), Some(AttrId(0)));
        assert_eq!(s.resolve("Year"), Some(AttrId(1)));
        assert_eq!(s.resolve("Nope"), None);
        assert_eq!(s.attr(AttrId(1)).dtype, DType::Int);
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn duplicate_names_rejected() {
        let _ = Schema::new([("A", DType::Str), ("A", DType::Int)]);
    }

    #[test]
    #[should_panic(expected = "no attribute named")]
    fn id_panics_on_missing() {
        let s = Schema::of_strings(["A"]);
        let _ = s.id("B");
    }

    #[test]
    fn of_strings_builds_str_columns() {
        let s = Schema::of_strings(["A", "B", "C"]);
        assert_eq!(s.arity(), 3);
        assert!(s.iter().all(|(_, a)| a.dtype == DType::Str));
        assert_eq!(s.names().collect::<Vec<_>>(), vec!["A", "B", "C"]);
    }

    #[test]
    fn display_is_readable() {
        let s = Schema::new([("A", DType::Str), ("N", DType::Int)]);
        assert_eq!(s.to_string(), "(A: str, N: int)");
    }
}
