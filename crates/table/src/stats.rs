//! Column statistics and empirical distributions.
//!
//! Two consumers drive this module:
//!
//! * **Repair algorithms.** Algorithm 1 of the paper repairs cells to the
//!   *most common* value of a column (`argmax_c P[City = c]`) or to the most
//!   probable value *conditioned* on another attribute
//!   (`argmax_c P[Country = c | City = t[City]]`). [`ColumnStats`] and
//!   [`ConditionalStats`] provide those argmaxes with deterministic
//!   tie-breaking.
//! * **The sampling Shapley estimator.** Example 2.5 replaces out-of-coalition
//!   cells with "a sample value from their column distribution";
//!   [`ColumnSampler`] draws those values.
//!
//! Nulls never participate in counts or draws: a masked-out cell must not
//! influence what "most common" means, otherwise the coalition semantics of
//! the cell game would leak.

use crate::schema::AttrId;
use crate::table::Table;
use crate::value::Value;
use rand::Rng;
use std::collections::HashMap;

/// Empirical histogram of the non-null values of one column.
#[derive(Debug, Clone, Default)]
pub struct ColumnStats {
    counts: HashMap<Value, usize>,
    total: usize,
}

impl ColumnStats {
    /// Collect stats from column `attr` of `table`, skipping nulls.
    pub fn from_column(table: &Table, attr: AttrId) -> Self {
        let mut s = ColumnStats::default();
        for v in table.column(attr) {
            s.add(v);
        }
        s
    }

    /// Add one observation ((labeled) nulls ignored).
    pub fn add(&mut self, v: &Value) {
        if !v.is_concrete() {
            return;
        }
        *self.counts.entry(v.clone()).or_insert(0) += 1;
        self.total += 1;
    }

    /// Number of non-null observations.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Number of distinct non-null values.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Count of a particular value.
    pub fn count(&self, v: &Value) -> usize {
        self.counts.get(v).copied().unwrap_or(0)
    }

    /// Empirical probability `P[col = v]` (0 if no observations).
    pub fn probability(&self, v: &Value) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(v) as f64 / self.total as f64
        }
    }

    /// The most common value, `argmax_c P[col = c]`.
    ///
    /// Ties break toward the smaller value under the total [`Value`] order,
    /// which makes every repair algorithm built on this deterministic.
    /// Returns `None` when the column is entirely null.
    pub fn most_common(&self) -> Option<&Value> {
        self.counts
            .iter()
            .max_by(|(va, ca), (vb, cb)| ca.cmp(cb).then_with(|| vb.cmp(va)))
            .map(|(v, _)| v)
    }

    /// All distinct values with their counts, most frequent first
    /// (deterministic order).
    pub fn ranked(&self) -> Vec<(&Value, usize)> {
        let mut out: Vec<(&Value, usize)> = self.counts.iter().map(|(v, c)| (v, *c)).collect();
        out.sort_by(|(va, ca), (vb, cb)| cb.cmp(ca).then_with(|| va.cmp(vb)));
        out
    }

    /// Iterate distinct values (arbitrary order).
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.counts.keys()
    }
}

/// Joint counts of `(given, target)` attribute pairs, answering
/// `argmax_v P[target = v | given = g]`.
#[derive(Debug, Clone, Default)]
pub struct ConditionalStats {
    by_given: HashMap<Value, ColumnStats>,
}

impl ConditionalStats {
    /// Collect `(given → target)` co-occurrence counts from a table. Rows
    /// where either side is null are skipped.
    pub fn from_columns(table: &Table, given: AttrId, target: AttrId) -> Self {
        let mut s = ConditionalStats::default();
        for i in 0..table.num_rows() {
            s.add(table.value(i, given), table.value(i, target));
        }
        s
    }

    /// Add one `(given, target)` observation (skipped if either is null).
    pub fn add(&mut self, given: &Value, target: &Value) {
        if !given.is_concrete() || !target.is_concrete() {
            return;
        }
        self.by_given.entry(given.clone()).or_default().add(target);
    }

    /// `argmax_v P[target = v | given = g]`, or `None` if `g` was never seen
    /// with a non-null target.
    pub fn most_common_given(&self, g: &Value) -> Option<&Value> {
        self.by_given.get(g).and_then(|s| s.most_common())
    }

    /// `P[target = v | given = g]` (0 when `g` unseen).
    pub fn probability_given(&self, g: &Value, v: &Value) -> f64 {
        self.by_given.get(g).map_or(0.0, |s| s.probability(v))
    }

    /// Number of observations with `given = g`.
    pub fn support(&self, g: &Value) -> usize {
        self.by_given.get(g).map_or(0, |s| s.total())
    }
}

/// Random sampler over the empirical distribution of a column.
///
/// Draws are weighted by frequency, mirroring Example 2.5 ("replaced with a
/// sample value from their column distribution").
#[derive(Debug, Clone)]
pub struct ColumnSampler {
    /// Values repeated by multiplicity would be wasteful; store cumulative
    /// weights instead.
    values: Vec<Value>,
    cumulative: Vec<usize>,
    total: usize,
}

impl ColumnSampler {
    /// Build a sampler for column `attr` of `table` (nulls excluded).
    pub fn from_column(table: &Table, attr: AttrId) -> Self {
        Self::from_stats(&ColumnStats::from_column(table, attr))
    }

    /// Build a sampler from precomputed stats.
    pub fn from_stats(stats: &ColumnStats) -> Self {
        let mut ranked = stats.ranked();
        // ranked() is deterministic; keep that order for reproducibility.
        let mut values = Vec::with_capacity(ranked.len());
        let mut cumulative = Vec::with_capacity(ranked.len());
        let mut acc = 0usize;
        for (v, c) in ranked.drain(..) {
            acc += c;
            values.push(v.clone());
            cumulative.push(acc);
        }
        ColumnSampler {
            values,
            cumulative,
            total: acc,
        }
    }

    /// `true` iff the column had no non-null values to sample from.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Draw one value; `Value::Null` if the column was all-null.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Value {
        if self.total == 0 {
            return Value::Null;
        }
        let x = rng.gen_range(0..self.total);
        let idx = self.cumulative.partition_point(|&c| c <= x);
        self.values[idx].clone()
    }
}

/// Samplers for every column of a table, prebuilt once per explanation run.
#[derive(Debug, Clone)]
pub struct TableSamplers {
    samplers: Vec<ColumnSampler>,
}

impl TableSamplers {
    /// Build per-column samplers for `table`.
    pub fn new(table: &Table) -> Self {
        let samplers = (0..table.arity())
            .map(|a| ColumnSampler::from_column(table, AttrId(a)))
            .collect();
        TableSamplers { samplers }
    }

    /// The sampler for column `attr`.
    pub fn column(&self, attr: AttrId) -> &ColumnSampler {
        &self.samplers[attr.0]
    }

    /// Draw a value for column `attr`.
    pub fn sample<R: Rng + ?Sized>(&self, attr: AttrId, rng: &mut R) -> Value {
        self.samplers[attr.0].sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::DType;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table() -> Table {
        let schema = Schema::new([("City", DType::Str), ("Country", DType::Str)]);
        let rows = ["Madrid", "Madrid", "Barcelona", "Madrid"]
            .iter()
            .zip(["Spain", "Spain", "Spain", "Argentina"])
            .map(|(c, k)| vec![Value::str(*c), Value::str(k)])
            .collect();
        Table::from_rows(schema, rows)
    }

    #[test]
    fn most_common_counts_frequencies() {
        let t = table();
        let s = ColumnStats::from_column(&t, AttrId(0));
        assert_eq!(s.total(), 4);
        assert_eq!(s.distinct(), 2);
        assert_eq!(s.most_common(), Some(&Value::str("Madrid")));
        assert_eq!(s.count(&Value::str("Madrid")), 3);
        assert!((s.probability(&Value::str("Barcelona")) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn nulls_are_ignored() {
        let mut t = table();
        t.set(crate::table::CellRef::new(0, AttrId(0)), Value::Null);
        let s = ColumnStats::from_column(&t, AttrId(0));
        assert_eq!(s.total(), 3);
        assert_eq!(s.count(&Value::Null), 0);
    }

    #[test]
    fn most_common_ties_break_deterministically() {
        let mut s = ColumnStats::default();
        s.add(&Value::str("b"));
        s.add(&Value::str("a"));
        assert_eq!(s.most_common(), Some(&Value::str("a")));
    }

    #[test]
    fn all_null_column_has_no_mode() {
        let schema = Schema::of_strings(["A"]);
        let t = Table::from_rows(schema, vec![vec![Value::Null], vec![Value::Null]]);
        let s = ColumnStats::from_column(&t, AttrId(0));
        assert_eq!(s.most_common(), None);
        assert_eq!(s.total(), 0);
    }

    #[test]
    fn conditional_argmax() {
        let t = table();
        let c = ConditionalStats::from_columns(&t, AttrId(0), AttrId(1));
        assert_eq!(
            c.most_common_given(&Value::str("Madrid")),
            Some(&Value::str("Spain"))
        );
        assert_eq!(c.support(&Value::str("Madrid")), 3);
        assert!(
            (c.probability_given(&Value::str("Madrid"), &Value::str("Argentina")) - 1.0 / 3.0)
                .abs()
                < 1e-12
        );
        assert_eq!(c.most_common_given(&Value::str("Valencia")), None);
    }

    #[test]
    fn conditional_skips_nulls() {
        let mut c = ConditionalStats::default();
        c.add(&Value::Null, &Value::str("x"));
        c.add(&Value::str("g"), &Value::Null);
        assert_eq!(c.support(&Value::Null), 0);
        assert_eq!(c.support(&Value::str("g")), 0);
    }

    #[test]
    fn sampler_distribution_roughly_matches_frequencies() {
        let t = table();
        let sampler = ColumnSampler::from_column(&t, AttrId(0));
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let madrid = (0..n)
            .filter(|_| sampler.sample(&mut rng) == Value::str("Madrid"))
            .count();
        let p = madrid as f64 / n as f64;
        assert!((p - 0.75).abs() < 0.03, "p = {p}");
    }

    #[test]
    fn sampler_on_all_null_column_returns_null() {
        let schema = Schema::of_strings(["A"]);
        let t = Table::from_rows(schema, vec![vec![Value::Null]]);
        let s = ColumnSampler::from_column(&t, AttrId(0));
        assert!(s.is_empty());
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(s.sample(&mut rng), Value::Null);
    }

    #[test]
    fn sampler_is_deterministic_per_seed() {
        let t = table();
        let s = ColumnSampler::from_column(&t, AttrId(1));
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..20).map(|_| s.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(42), draw(42));
    }

    #[test]
    fn table_samplers_cover_all_columns() {
        let t = table();
        let ts = TableSamplers::new(&t);
        let mut rng = StdRng::seed_from_u64(3);
        let v = ts.sample(AttrId(1), &mut rng);
        assert!(v == Value::str("Spain") || v == Value::str("Argentina"));
        assert!(!ts.column(AttrId(0)).is_empty());
    }

    #[test]
    fn ranked_is_sorted_by_count_then_value() {
        let mut s = ColumnStats::default();
        for v in ["b", "a", "a", "c", "c"] {
            s.add(&Value::str(v));
        }
        let r = s.ranked();
        assert_eq!(
            r.iter()
                .map(|(v, c)| (v.as_str().unwrap(), *c))
                .collect::<Vec<_>>(),
            vec![("a", 2), ("c", 2), ("b", 1)]
        );
    }
}
