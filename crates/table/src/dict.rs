//! Dictionary-encoded columnar view of a [`Table`].
//!
//! `Value` is a heavy enum, and the layers above this crate — predicate
//! evaluation in the violation scan, equality partitioning, coalition
//! fingerprints — all churn through it. [`EncodedTable`] interns every
//! column into a per-column [`Dictionary`] (value → dense `u32` code) and
//! stores the columns as contiguous `u32` code arrays (one flat buffer),
//! so those hot loops become integer compares over cache-friendly memory. The row-oriented
//! [`Table`] API is untouched: an encoded view is built *beside* a table
//! with [`EncodedTable::encode`] and decodes on demand.
//!
//! Codes are assigned in sorted value order (`Null` first, then labeled
//! nulls by label, then concrete values), so `<`/`>` predicates compare
//! codes directly. The comparison helpers ([`Dictionary::sql_eq_codes`],
//! [`Dictionary::sql_ne_codes`], [`Dictionary::sql_cmp_codes`]) reproduce
//! the SQL semantics of [`Value::sql_eq`]/[`Value::sql_ne`]/
//! [`Value::sql_cmp`] **exactly**, including the cross-type `Int`/`Float`
//! aliasing (`Int(2)` sql-equals `Float(2.0)` yet the two are distinct
//! dictionary entries) and the vacuity of nulls. The one case integer
//! codes cannot represent — a column mixing floats with integers beyond
//! `f64` precision, where SQL equality stops being transitive — is
//! detected at build time and falls back to comparing the decoded values,
//! so the helpers are exact for *every* column, not just well-behaved
//! ones.

use crate::schema::AttrId;
use crate::table::Table;
use crate::value::Value;
use std::cmp::Ordering;
use std::collections::HashMap;

/// The comparison class of a dictionary code: which values it can be
/// SQL-compared against. Cross-class comparisons of concrete values are
/// incomparable (`sql_cmp` is `None`), nulls compare with nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodeClass {
    /// The plain SQL `NULL`: satisfies no predicate, not even `!=`.
    Null,
    /// A labeled null ([`Value::LabeledNull`]): equal only to itself,
    /// unequal to everything else, position-less in every order.
    Labeled,
    /// A boolean.
    Bool,
    /// An `Int` or `Float` — the two compare numerically with each other.
    Num,
    /// A string.
    Str,
}

impl CodeClass {
    fn of(v: &Value) -> CodeClass {
        match v {
            Value::Null => CodeClass::Null,
            Value::LabeledNull(_) => CodeClass::Labeled,
            Value::Bool(_) => CodeClass::Bool,
            Value::Int(_) | Value::Float(_) => CodeClass::Num,
            Value::Str(_) => CodeClass::Str,
        }
    }
}

/// A total, transitive order over values used to assign codes.
///
/// [`Value`]'s `Ord` is *not* usable here: for integers beyond `f64`
/// precision it can order `Int(a) < Int(b)` while ranking both `Equal` to
/// the same float — an inconsistent comparator that `sort` may reject.
/// This order breaks numeric ties by `(f64 value, variant, exact i64)`
/// lexicographically, which is transitive, keeps SQL-equal numeric pairs
/// adjacent, and agrees with `sql_cmp` wherever the two are both defined
/// and the column is not flagged for fallback (see
/// [`Dictionary::sql_cmp_codes`]).
fn code_order(a: &Value, b: &Value) -> Ordering {
    fn rank(v: &Value) -> u8 {
        match v {
            Value::Null => 0,
            Value::LabeledNull(_) => 1,
            Value::Bool(_) => 2,
            Value::Int(_) | Value::Float(_) => 3,
            Value::Str(_) => 4,
        }
    }
    match (a, b) {
        (Value::LabeledNull(x), Value::LabeledNull(y)) => x.cmp(y),
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        (Value::Str(x), Value::Str(y)) => x.cmp(y),
        (Value::Int(_) | Value::Float(_), Value::Int(_) | Value::Float(_)) => {
            let key = |v: &Value| match v {
                Value::Int(i) => (*i as f64, 0u8, *i),
                Value::Float(f) => (*f, 1u8, 0i64),
                _ => unreachable!("numeric arm"),
            };
            let (fa, va, ia) = key(a);
            let (fb, vb, ib) = key(b);
            fa.total_cmp(&fb).then(va.cmp(&vb)).then(ia.cmp(&ib))
        }
        _ => rank(a).cmp(&rank(b)),
    }
}

/// A per-column value dictionary: every distinct value of the column,
/// sorted, addressed by a dense `u32` code.
#[derive(Debug, Clone)]
pub struct Dictionary {
    /// Distinct values in code order.
    entries: Vec<Value>,
    /// Comparison class per code.
    class: Vec<CodeClass>,
    /// Canonical code of each code's SQL-equality group: `Int(2)` and
    /// `Float(2.0)` are distinct entries but share an `eq_class`.
    eq_class: Vec<u32>,
    /// The code of `Value::Null`, if the column contains one (always 0 —
    /// `Null` sorts first).
    null_code: Option<u32>,
    /// `true` when the column mixes floats with integers beyond `f64`
    /// precision, making SQL numeric equality non-transitive; numeric
    /// comparisons then decode and compare values instead of codes.
    num_fallback: bool,
}

impl Dictionary {
    /// Number of distinct values (codes) in the column.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the column had no rows at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The value a code stands for.
    #[inline]
    pub fn decode(&self, code: u32) -> &Value {
        &self.entries[code as usize]
    }

    /// The code of a value present in the column, `None` otherwise.
    ///
    /// Entries are sorted by the strict total [`code_order`] (distinct
    /// values never compare `Equal` under it), so this is a binary search —
    /// no reverse map is materialized at encode time.
    pub fn code_of(&self, v: &Value) -> Option<u32> {
        self.entries
            .binary_search_by(|e| code_order(e, v))
            .ok()
            .map(|i| i as u32)
    }

    /// The code of `Value::Null`, if the column contains a plain null.
    #[inline]
    pub fn null_code(&self) -> Option<u32> {
        self.null_code
    }

    /// The comparison class of a code.
    #[inline]
    pub fn class(&self, code: u32) -> CodeClass {
        self.class[code as usize]
    }

    /// The distinct values, in code (sorted) order.
    pub fn values(&self) -> &[Value] {
        &self.entries
    }

    /// Exactly [`Value::sql_eq`] on the decoded values, via codes.
    #[inline]
    pub fn sql_eq_codes(&self, a: u32, b: u32) -> bool {
        let (ca, cb) = (self.class[a as usize], self.class[b as usize]);
        match (ca, cb) {
            (CodeClass::Null, _) | (_, CodeClass::Null) => false,
            (CodeClass::Labeled, CodeClass::Labeled) => a == b,
            (CodeClass::Labeled, _) | (_, CodeClass::Labeled) => false,
            (CodeClass::Num, CodeClass::Num) if self.num_fallback => {
                self.decode(a).sql_eq(self.decode(b))
            }
            _ => self.eq_class[a as usize] == self.eq_class[b as usize],
        }
    }

    /// Exactly [`Value::sql_ne`] on the decoded values, via codes. Not the
    /// negation of [`Dictionary::sql_eq_codes`]: nulls and cross-class
    /// pairs are neither equal nor unequal.
    #[inline]
    pub fn sql_ne_codes(&self, a: u32, b: u32) -> bool {
        let (ca, cb) = (self.class[a as usize], self.class[b as usize]);
        match (ca, cb) {
            (CodeClass::Null, _) | (_, CodeClass::Null) => false,
            (CodeClass::Labeled, CodeClass::Labeled) => a != b,
            (CodeClass::Labeled, _) | (_, CodeClass::Labeled) => true,
            (CodeClass::Num, CodeClass::Num) if self.num_fallback => {
                self.decode(a).sql_ne(self.decode(b))
            }
            _ => ca == cb && self.eq_class[a as usize] != self.eq_class[b as usize],
        }
    }

    /// Exactly [`Value::sql_cmp`] on the decoded values, via codes: `None`
    /// for nulls, labeled nulls, and cross-class pairs; the code order
    /// otherwise (codes were assigned in value order).
    #[inline]
    pub fn sql_cmp_codes(&self, a: u32, b: u32) -> Option<Ordering> {
        let (ca, cb) = (self.class[a as usize], self.class[b as usize]);
        match (ca, cb) {
            (CodeClass::Null, _) | (_, CodeClass::Null) => None,
            (CodeClass::Labeled, _) | (_, CodeClass::Labeled) => None,
            (CodeClass::Num, CodeClass::Num) if self.num_fallback => {
                self.decode(a).sql_cmp(self.decode(b))
            }
            _ if ca != cb => None,
            _ => {
                if self.eq_class[a as usize] == self.eq_class[b as usize] {
                    Some(Ordering::Equal)
                } else {
                    Some(a.cmp(&b))
                }
            }
        }
    }

    /// Build a dictionary from the distinct values of one column, plus the
    /// remap `provisional id → code` (provisional ids are first-seen
    /// order, as produced by the encoder's interning pass).
    fn from_distinct(mut distinct: Vec<Value>) -> (Dictionary, Vec<u32>) {
        assert!(
            distinct.len() < u32::MAX as usize,
            "column has too many distinct values for u32 codes"
        );
        // Sort the *provisional ids* so the remap falls out of the permutation.
        let mut order: Vec<usize> = (0..distinct.len()).collect();
        order.sort_by(|&x, &y| code_order(&distinct[x], &distinct[y]));
        let mut remap = vec![0u32; distinct.len()];
        for (code, &prov) in order.iter().enumerate() {
            remap[prov] = code as u32;
        }
        let mut entries: Vec<Value> = Vec::with_capacity(distinct.len());
        for &prov in &order {
            entries.push(std::mem::replace(&mut distinct[prov], Value::Null));
        }

        let class: Vec<CodeClass> = entries.iter().map(CodeClass::of).collect();
        let null_code = entries
            .iter()
            .position(|v| matches!(v, Value::Null))
            .map(|p| p as u32);

        // SQL-equality groups: adjacent runs of sql-equal entries (the sort
        // keeps Int/Float aliases adjacent). While scanning, detect the
        // non-transitive case: two distinct integers sharing one f64 image
        // *and* a float at that image.
        let mut eq_class = vec![0u32; entries.len()];
        let mut num_fallback = false;
        let mut group_start = 0usize;
        let mut ints_in_run = 0usize;
        let mut floats_in_run = 0usize;
        let mut run_key: Option<f64> = None;
        for code in 0..entries.len() {
            if code > 0 && !entries[code - 1].sql_eq(&entries[code]) {
                group_start = code;
            }
            eq_class[code] = group_start as u32;
            // Track f64-image runs among numeric entries for the fallback flag.
            let img = match &entries[code] {
                Value::Int(i) => Some((*i as f64, true)),
                Value::Float(f) => Some((*f, false)),
                _ => None,
            };
            match img {
                Some((f, is_int)) => {
                    if run_key.is_some_and(|k| k.total_cmp(&f) == Ordering::Equal) {
                        if is_int {
                            ints_in_run += 1;
                        } else {
                            floats_in_run += 1;
                        }
                    } else {
                        run_key = Some(f);
                        ints_in_run = usize::from(is_int);
                        floats_in_run = usize::from(!is_int);
                    }
                    if ints_in_run >= 2 && floats_in_run >= 1 {
                        num_fallback = true;
                    }
                }
                None => run_key = None,
            }
        }

        (
            Dictionary {
                entries,
                class,
                eq_class,
                null_code,
                num_fallback,
            },
            remap,
        )
    }
}

/// A columnar, dictionary-encoded view of a [`Table`]: one [`Dictionary`]
/// plus one contiguous `Vec<u32>` code array per column.
///
/// The view is a snapshot — it does not track later `Table` mutations.
/// Build it once per scan (or per game) with [`EncodedTable::encode`].
#[derive(Debug, Clone)]
pub struct EncodedTable {
    dicts: Vec<Dictionary>,
    /// All columns' codes in one flat buffer, column-major: column `a`
    /// occupies `cols[a*rows .. (a+1)*rows]`. One allocation per encode
    /// instead of one per column — encode runs once per coalition repair
    /// on the oracle path, so its constant cost is hot.
    cols: Vec<u32>,
    rows: usize,
}

impl EncodedTable {
    /// Encode every column of `table`: intern the distinct values into a
    /// sorted dictionary and store the rows as dense codes.
    pub fn encode(table: &Table) -> EncodedTable {
        let arity = table.arity();
        let rows = table.num_rows();
        let mut dicts = Vec::with_capacity(arity);
        let mut cols: Vec<u32> = Vec::with_capacity(arity * rows);
        // Small tables are the oracle's bread and butter (every coalition
        // repair re-encodes a masked copy), and there a linear probe of the
        // distinct list beats paying a hash per row.
        const LINEAR_ROWS: usize = 64;
        for a in 0..arity {
            let attr = AttrId(a);
            let start = cols.len();
            let mut distinct: Vec<Value> = Vec::new();
            if rows <= LINEAR_ROWS {
                for v in table.column(attr) {
                    let id = match distinct.iter().position(|d| d == v) {
                        Some(i) => i as u32,
                        None => {
                            distinct.push(v.clone());
                            (distinct.len() - 1) as u32
                        }
                    };
                    cols.push(id);
                }
            } else {
                let mut interner: HashMap<&Value, u32> = HashMap::new();
                for v in table.column(attr) {
                    let next = distinct.len() as u32;
                    let id = *interner.entry(v).or_insert_with(|| {
                        distinct.push(v.clone());
                        next
                    });
                    cols.push(id);
                }
            }
            let (dict, remap) = Dictionary::from_distinct(distinct);
            for c in &mut cols[start..] {
                *c = remap[*c as usize];
            }
            dicts.push(dict);
        }
        EncodedTable { dicts, cols, rows }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.dicts.len()
    }

    /// The dictionary of one column.
    #[inline]
    pub fn dict(&self, attr: AttrId) -> &Dictionary {
        &self.dicts[attr.0]
    }

    /// The contiguous code array of one column (one code per row).
    #[inline]
    pub fn codes(&self, attr: AttrId) -> &[u32] {
        &self.cols[attr.0 * self.rows..(attr.0 + 1) * self.rows]
    }

    /// The code of one cell.
    #[inline]
    pub fn code(&self, row: usize, attr: AttrId) -> u32 {
        self.cols[attr.0 * self.rows + row]
    }

    /// Decode one cell back to its value.
    pub fn decode(&self, row: usize, attr: AttrId) -> &Value {
        self.dicts[attr.0].decode(self.code(row, attr))
    }

    /// Distinct-value count per column, in schema order — the dictionary
    /// statistic the stress harness reports.
    pub fn distinct_counts(&self) -> Vec<usize> {
        self.dicts.iter().map(Dictionary::len).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TableBuilder;
    use crate::table::CellRef;

    fn sample_table() -> Table {
        TableBuilder::new()
            .str_columns(["Team", "City"])
            .str_row(["Real", "Madrid"])
            .str_row(["Barca", "Barcelona"])
            .str_row(["Real", "Madrid"])
            .str_row(["Atletico", "Madrid"])
            .build()
    }

    #[test]
    fn encode_decode_identity() {
        let mut t = sample_table();
        t.set(CellRef::new(1, AttrId(1)), Value::Null);
        let enc = EncodedTable::encode(&t);
        assert_eq!(enc.num_rows(), 4);
        assert_eq!(enc.arity(), 2);
        for row in 0..t.num_rows() {
            for a in 0..t.arity() {
                let attr = AttrId(a);
                assert_eq!(enc.decode(row, attr), t.value(row, attr));
            }
        }
    }

    #[test]
    fn codes_are_sorted_and_deduplicated() {
        let t = sample_table();
        let enc = EncodedTable::encode(&t);
        let team = enc.dict(AttrId(0));
        assert_eq!(team.len(), 3);
        assert_eq!(
            team.values(),
            &[
                Value::str("Atletico"),
                Value::str("Barca"),
                Value::str("Real")
            ]
        );
        // Equal values share a code.
        assert_eq!(enc.code(0, AttrId(0)), enc.code(2, AttrId(0)));
        assert_eq!(enc.distinct_counts(), vec![3, 2]);
    }

    #[test]
    fn null_sorts_first_and_gets_the_null_code() {
        let mut t = sample_table();
        t.set(CellRef::new(3, AttrId(0)), Value::Null);
        let enc = EncodedTable::encode(&t);
        let d = enc.dict(AttrId(0));
        assert_eq!(d.null_code(), Some(0));
        assert_eq!(d.class(0), CodeClass::Null);
        assert_eq!(enc.code(3, AttrId(0)), 0);
        // The city column has no null.
        assert_eq!(enc.dict(AttrId(1)).null_code(), None);
    }

    #[test]
    fn code_of_round_trips() {
        let t = sample_table();
        let enc = EncodedTable::encode(&t);
        let d = enc.dict(AttrId(1));
        for (code, v) in d.values().iter().enumerate() {
            assert_eq!(d.code_of(v), Some(code as u32));
        }
        assert_eq!(d.code_of(&Value::str("Nowhere")), None);
    }

    #[test]
    fn int_float_aliases_share_an_eq_class_but_not_a_code() {
        let t = Table::from_rows(
            crate::schema::Schema::of_strings(["N".to_string()]),
            vec![
                vec![Value::int(2)],
                vec![Value::Float(2.0)],
                vec![Value::int(3)],
            ],
        );
        let enc = EncodedTable::encode(&t);
        let d = enc.dict(AttrId(0));
        assert_eq!(d.len(), 3, "Int(2) and Float(2.0) are distinct entries");
        let c_i2 = d.code_of(&Value::int(2)).unwrap();
        let c_f2 = d.code_of(&Value::Float(2.0)).unwrap();
        let c_i3 = d.code_of(&Value::int(3)).unwrap();
        assert_ne!(c_i2, c_f2);
        assert!(d.sql_eq_codes(c_i2, c_f2), "2 sql-equals 2.0");
        assert!(!d.sql_ne_codes(c_i2, c_f2));
        assert_eq!(d.sql_cmp_codes(c_i2, c_f2), Some(Ordering::Equal));
        assert_eq!(d.sql_cmp_codes(c_i2, c_i3), Some(Ordering::Less));
        assert_eq!(d.sql_cmp_codes(c_i3, c_f2), Some(Ordering::Greater));
    }

    #[test]
    fn labeled_nulls_are_distinct_and_never_equal_concretes() {
        let t = Table::from_rows(
            crate::schema::Schema::of_strings(["A".to_string()]),
            vec![
                vec![Value::LabeledNull(7)],
                vec![Value::LabeledNull(3)],
                vec![Value::str("x")],
                vec![Value::Null],
            ],
        );
        let enc = EncodedTable::encode(&t);
        let d = enc.dict(AttrId(0));
        let l3 = d.code_of(&Value::LabeledNull(3)).unwrap();
        let l7 = d.code_of(&Value::LabeledNull(7)).unwrap();
        let s = d.code_of(&Value::str("x")).unwrap();
        let n = d.null_code().unwrap();
        assert!(l3 < l7, "labels sort numerically after Null");
        assert!(d.sql_eq_codes(l3, l3));
        assert!(!d.sql_eq_codes(l3, l7));
        assert!(d.sql_ne_codes(l3, l7));
        assert!(d.sql_ne_codes(l3, s), "labeled != concrete");
        assert!(!d.sql_eq_codes(l3, s));
        assert!(!d.sql_ne_codes(l3, n), "plain null voids !=");
        assert_eq!(d.sql_cmp_codes(l3, s), None);
    }

    #[test]
    fn cross_class_pairs_are_neither_equal_nor_unequal_nor_ordered() {
        let t = Table::from_rows(
            crate::schema::Schema::of_strings(["A".to_string()]),
            vec![
                vec![Value::int(1)],
                vec![Value::str("1")],
                vec![Value::Bool(true)],
            ],
        );
        let d = EncodedTable::encode(&t);
        let d = d.dict(AttrId(0));
        let i = d.code_of(&Value::int(1)).unwrap();
        let s = d.code_of(&Value::str("1")).unwrap();
        let b = d.code_of(&Value::Bool(true)).unwrap();
        for (x, y) in [(i, s), (i, b), (s, b)] {
            assert!(!d.sql_eq_codes(x, y));
            assert!(!d.sql_ne_codes(x, y));
            assert_eq!(d.sql_cmp_codes(x, y), None);
        }
    }

    #[test]
    fn big_int_float_mix_falls_back_and_stays_exact() {
        // Two distinct i64s with the same f64 image plus that float: SQL
        // equality is non-transitive here, codes cannot carry it — the
        // dictionary must detect the case and still answer exactly.
        let a = 1i64 << 53;
        let b = (1i64 << 53) + 1; // rounds to 2^53 as f64 (ties-to-even)
        let f = (1i64 << 53) as f64; // == (a as f64) == (b as f64)
        assert_eq!(a as f64, f);
        assert_eq!(b as f64, f);
        let t = Table::from_rows(
            crate::schema::Schema::of_strings(["A".to_string()]),
            vec![
                vec![Value::int(a)],
                vec![Value::int(b)],
                vec![Value::Float(f)],
            ],
        );
        let enc = EncodedTable::encode(&t);
        let d = enc.dict(AttrId(0));
        let ca = d.code_of(&Value::int(a)).unwrap();
        let cb = d.code_of(&Value::int(b)).unwrap();
        let cf = d.code_of(&Value::Float(f)).unwrap();
        for (x, y) in [(ca, cb), (ca, cf), (cb, cf), (cf, ca), (cb, ca)] {
            let (vx, vy) = (d.decode(x).clone(), d.decode(y).clone());
            assert_eq!(d.sql_eq_codes(x, y), vx.sql_eq(&vy), "{vx:?} vs {vy:?}");
            assert_eq!(d.sql_ne_codes(x, y), vx.sql_ne(&vy), "{vx:?} vs {vy:?}");
            assert_eq!(d.sql_cmp_codes(x, y), vx.sql_cmp(&vy), "{vx:?} vs {vy:?}");
        }
    }

    #[test]
    fn order_predicates_follow_code_order() {
        let t = Table::from_rows(
            crate::schema::Schema::of_strings(["A".to_string()]),
            vec![
                vec![Value::int(10)],
                vec![Value::int(-3)],
                vec![Value::Float(2.5)],
                vec![Value::int(7)],
            ],
        );
        let enc = EncodedTable::encode(&t);
        let d = enc.dict(AttrId(0));
        // Codes ascend with numeric value.
        let vals = [-3.0, 2.5, 7.0, 10.0];
        for w in vals.windows(2) {
            let lo = d
                .values()
                .iter()
                .position(|v| v.sql_cmp(&Value::Float(w[0])) == Some(Ordering::Equal))
                .unwrap() as u32;
            let hi = d
                .values()
                .iter()
                .position(|v| v.sql_cmp(&Value::Float(w[1])) == Some(Ordering::Equal))
                .unwrap() as u32;
            assert!(lo < hi);
            assert_eq!(d.sql_cmp_codes(lo, hi), Some(Ordering::Less));
        }
    }

    #[test]
    fn empty_table_encodes() {
        let t = Table::from_rows(crate::schema::Schema::of_strings(["A".to_string()]), vec![]);
        let enc = EncodedTable::encode(&t);
        assert_eq!(enc.num_rows(), 0);
        assert!(enc.dict(AttrId(0)).is_empty());
        assert_eq!(enc.codes(AttrId(0)), &[] as &[u32]);
    }
}
