//! # trex-table
//!
//! The storage substrate of the T-REx reproduction: an in-memory,
//! dynamically-typed relational table with the operations the repair and
//! explanation layers need —
//!
//! * [`Value`] cells with SQL-style null comparison semantics,
//! * [`Schema`]/[`Table`]/[`CellRef`] addressing, row-major *vectorization*
//!   (Example 2.5 of the paper) and coalition *masking* (§2.2),
//! * column statistics and empirical samplers ([`stats`]) used both by the
//!   paper's Algorithm 1 and by the sampling Shapley estimator,
//! * CSV I/O ([`csv`]) and cell-level diffs ([`diff`]).
//!
//! The paper stores tables in PostgreSQL behind HoloClean; per the design
//! document (DESIGN.md §2) this crate is the in-memory substitute — the
//! explanation machinery needs only random cell access, null masking, and
//! column distributions, all provided here.

#![warn(missing_docs)]

pub mod builder;
pub mod csv;
pub mod dict;
pub mod diff;
pub mod schema;
pub mod stats;
pub mod table;
pub mod value;

pub use builder::TableBuilder;
pub use csv::{read_csv, read_csv_strings, write_csv, CsvError};
pub use dict::{CodeClass, Dictionary, EncodedTable};
pub use diff::{apply, diff, CellChange};
pub use schema::{AttrId, Attribute, Schema};
pub use stats::{ColumnSampler, ColumnStats, ConditionalStats, TableSamplers};
pub use table::{CellRef, Table};
pub use value::{DType, Value, ValueParseError};

// Property tests, gated behind the `proptest` feature to keep plain
// `cargo test` fast. They compile against the offline shim in
// `vendor/proptest` (or crates.io proptest — CI's weekly cron runs both):
// `cargo test --workspace --features proptest`.
#[cfg(all(test, feature = "proptest"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_value() -> impl Strategy<Value = Value> {
        prop_oneof![
            Just(Value::Null),
            any::<i64>().prop_map(Value::Int),
            // Finite floats only: CSV text round-trips are exact for these.
            (-1e9f64..1e9f64).prop_map(Value::Float),
            "[a-zA-Z0-9 ,\"']{0,12}".prop_map(Value::Str),
            any::<bool>().prop_map(Value::Bool),
        ]
    }

    fn arb_str_table() -> impl Strategy<Value = Table> {
        (1usize..5, 0usize..8).prop_flat_map(|(arity, rows)| {
            let names: Vec<String> = (0..arity).map(|i| format!("C{i}")).collect();
            proptest::collection::vec(
                proptest::collection::vec(
                    prop_oneof![
                        Just(Value::Null),
                        "[a-zA-Z0-9 ,]{0,10}".prop_map(Value::Str)
                    ],
                    arity,
                ),
                rows,
            )
            .prop_map(move |rows| Table::from_rows(Schema::of_strings(names.clone()), rows))
        })
    }

    proptest! {
        #[test]
        fn value_eq_implies_hash_eq(a in arb_value(), b in arb_value()) {
            use std::collections::hash_map::DefaultHasher;
            use std::hash::{Hash, Hasher};
            let h = |v: &Value| {
                let mut s = DefaultHasher::new();
                v.hash(&mut s);
                s.finish()
            };
            if a == b {
                prop_assert_eq!(h(&a), h(&b));
            }
        }

        #[test]
        fn value_total_order_is_consistent(a in arb_value(), b in arb_value(), c in arb_value()) {
            use std::cmp::Ordering;
            // antisymmetry
            if a.cmp(&b) == Ordering::Less {
                prop_assert_eq!(b.cmp(&a), Ordering::Greater);
            }
            // transitivity (spot check)
            if a.cmp(&b) != Ordering::Greater && b.cmp(&c) != Ordering::Greater {
                prop_assert_ne!(a.cmp(&c), Ordering::Greater);
            }
        }

        #[test]
        fn csv_roundtrip_str_tables(t in arb_str_table()) {
            let text = write_csv(&t);
            let dtypes = vec![DType::Str; t.arity()];
            let t2 = read_csv(&text, &dtypes).unwrap();
            prop_assert_eq!(t, t2);
        }

        #[test]
        fn vectorize_roundtrip(t in arb_str_table()) {
            let v = t.vectorize();
            prop_assert_eq!(v.len(), t.num_cells());
            let t2 = Table::from_vector(t.schema().clone(), v);
            prop_assert_eq!(t, t2);
        }

        #[test]
        fn full_mask_is_identity_empty_mask_is_all_null(t in arb_str_table()) {
            let all = vec![true; t.num_cells()];
            prop_assert_eq!(t.masked_keep(&all), t.clone());
            let none = vec![false; t.num_cells()];
            let m = t.masked_keep(&none);
            prop_assert!(m.cells_with_values().all(|(_, v)| v.is_null()));
        }

        #[test]
        fn diff_apply_roundtrip(a in arb_str_table()) {
            // mutate a few cells deterministically
            let mut b = a.clone();
            for (i, cell) in a.cells().enumerate() {
                if i % 3 == 0 {
                    b.set(cell, Value::str("MUT"));
                }
            }
            let d = diff(&a, &b);
            prop_assert_eq!(apply(&a, &d), b);
        }

        #[test]
        fn sql_eq_is_symmetric(a in arb_value(), b in arb_value()) {
            prop_assert_eq!(a.sql_eq(&b), b.sql_eq(&a));
            prop_assert_eq!(a.sql_ne(&b), b.sql_ne(&a));
            // eq and ne are mutually exclusive
            prop_assert!(!(a.sql_eq(&b) && a.sql_ne(&b)));
        }

        #[test]
        fn dict_encode_decode_identity(t in arb_mixed_table()) {
            let enc = EncodedTable::encode(&t);
            prop_assert_eq!(enc.num_rows(), t.num_rows());
            prop_assert_eq!(enc.arity(), t.arity());
            for row in 0..t.num_rows() {
                for a in 0..t.arity() {
                    let attr = AttrId(a);
                    prop_assert_eq!(enc.decode(row, attr), t.value(row, attr));
                }
            }
        }

        #[test]
        fn dict_codes_agree_with_value_sql_semantics(t in arb_mixed_table()) {
            // Every same-column pair of codes must answer sql_eq/sql_ne/sql_cmp
            // exactly as the decoded values do — including Int/Float aliasing,
            // labeled nulls, and the beyond-2^53 fallback columns.
            let enc = EncodedTable::encode(&t);
            for a in 0..t.arity() {
                let d = enc.dict(AttrId(a));
                for ca in 0..d.len() as u32 {
                    for cb in 0..d.len() as u32 {
                        let (va, vb) = (d.decode(ca), d.decode(cb));
                        prop_assert_eq!(d.sql_eq_codes(ca, cb), va.sql_eq(vb));
                        prop_assert_eq!(d.sql_ne_codes(ca, cb), va.sql_ne(vb));
                        prop_assert_eq!(d.sql_cmp_codes(ca, cb), va.sql_cmp(vb));
                    }
                }
            }
        }

        #[test]
        fn dict_order_preservation_and_dedup(t in arb_mixed_table()) {
            // Code order refines the SQL order (where defined), and equal
            // values share exactly one code.
            use std::cmp::Ordering;
            let enc = EncodedTable::encode(&t);
            for a in 0..t.arity() {
                let d = enc.dict(AttrId(a));
                for w in 0..d.len().saturating_sub(1) {
                    let (lo, hi) = (d.decode(w as u32), d.decode(w as u32 + 1));
                    prop_assert_ne!(lo, hi, "entries are deduplicated");
                    prop_assert_ne!(lo.sql_cmp(hi), Some(Ordering::Greater));
                }
                for v in t.column(AttrId(a)) {
                    let code = d.code_of(v).expect("every column value has a code");
                    prop_assert_eq!(d.decode(code), v);
                }
            }
        }

        #[test]
        fn dict_labeled_nulls_stay_distinct(labels in proptest::collection::vec(any::<u64>(), 1..6)) {
            let rows: Vec<Vec<Value>> = labels
                .iter()
                .map(|&l| vec![Value::LabeledNull(l)])
                .collect();
            let t = Table::from_rows(Schema::of_strings(["A".to_string()]), rows);
            let enc = EncodedTable::encode(&t);
            let d = enc.dict(AttrId(0));
            for &x in &labels {
                for &y in &labels {
                    let cx = d.code_of(&Value::LabeledNull(x)).unwrap();
                    let cy = d.code_of(&Value::LabeledNull(y)).unwrap();
                    prop_assert_eq!(d.sql_eq_codes(cx, cy), x == y);
                    prop_assert_eq!(d.sql_ne_codes(cx, cy), x != y);
                    prop_assert_eq!(d.sql_cmp_codes(cx, cy), None);
                }
            }
        }
    }

    fn arb_mixed_cell() -> impl Strategy<Value = Value> {
        prop_oneof![
            Just(Value::Null),
            any::<u64>().prop_map(Value::LabeledNull),
            any::<i64>().prop_map(Value::Int),
            // Includes integral floats so Int/Float code aliasing is exercised.
            (-64i64..64).prop_map(|i| Value::Float(i as f64)),
            (-1e9f64..1e9f64).prop_map(Value::Float),
            "[a-z]{0,4}".prop_map(Value::Str),
            any::<bool>().prop_map(Value::Bool),
        ]
    }

    fn arb_mixed_table() -> impl Strategy<Value = Table> {
        (1usize..4, 0usize..10).prop_flat_map(|(arity, rows)| {
            let names: Vec<String> = (0..arity).map(|i| format!("C{i}")).collect();
            proptest::collection::vec(proptest::collection::vec(arb_mixed_cell(), arity), rows)
                .prop_map(move |rows| Table::from_rows(Schema::of_strings(names.clone()), rows))
        })
    }
}
