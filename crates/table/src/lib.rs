//! # trex-table
//!
//! The storage substrate of the T-REx reproduction: an in-memory,
//! dynamically-typed relational table with the operations the repair and
//! explanation layers need —
//!
//! * [`Value`] cells with SQL-style null comparison semantics,
//! * [`Schema`]/[`Table`]/[`CellRef`] addressing, row-major *vectorization*
//!   (Example 2.5 of the paper) and coalition *masking* (§2.2),
//! * column statistics and empirical samplers ([`stats`]) used both by the
//!   paper's Algorithm 1 and by the sampling Shapley estimator,
//! * CSV I/O ([`csv`]) and cell-level diffs ([`diff`]).
//!
//! The paper stores tables in PostgreSQL behind HoloClean; per the design
//! document (DESIGN.md §2) this crate is the in-memory substitute — the
//! explanation machinery needs only random cell access, null masking, and
//! column distributions, all provided here.

#![warn(missing_docs)]

pub mod builder;
pub mod csv;
pub mod diff;
pub mod schema;
pub mod stats;
pub mod table;
pub mod value;

pub use builder::TableBuilder;
pub use csv::{read_csv, read_csv_strings, write_csv, CsvError};
pub use diff::{apply, diff, CellChange};
pub use schema::{AttrId, Attribute, Schema};
pub use stats::{ColumnSampler, ColumnStats, ConditionalStats, TableSamplers};
pub use table::{CellRef, Table};
pub use value::{DType, Value, ValueParseError};

// Property tests, gated behind the `proptest` feature to keep plain
// `cargo test` fast. They compile against the offline shim in
// `vendor/proptest` (or crates.io proptest — CI's weekly cron runs both):
// `cargo test --workspace --features proptest`.
#[cfg(all(test, feature = "proptest"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_value() -> impl Strategy<Value = Value> {
        prop_oneof![
            Just(Value::Null),
            any::<i64>().prop_map(Value::Int),
            // Finite floats only: CSV text round-trips are exact for these.
            (-1e9f64..1e9f64).prop_map(Value::Float),
            "[a-zA-Z0-9 ,\"']{0,12}".prop_map(Value::Str),
            any::<bool>().prop_map(Value::Bool),
        ]
    }

    fn arb_str_table() -> impl Strategy<Value = Table> {
        (1usize..5, 0usize..8).prop_flat_map(|(arity, rows)| {
            let names: Vec<String> = (0..arity).map(|i| format!("C{i}")).collect();
            proptest::collection::vec(
                proptest::collection::vec(
                    prop_oneof![
                        Just(Value::Null),
                        "[a-zA-Z0-9 ,]{0,10}".prop_map(Value::Str)
                    ],
                    arity,
                ),
                rows,
            )
            .prop_map(move |rows| Table::from_rows(Schema::of_strings(names.clone()), rows))
        })
    }

    proptest! {
        #[test]
        fn value_eq_implies_hash_eq(a in arb_value(), b in arb_value()) {
            use std::collections::hash_map::DefaultHasher;
            use std::hash::{Hash, Hasher};
            let h = |v: &Value| {
                let mut s = DefaultHasher::new();
                v.hash(&mut s);
                s.finish()
            };
            if a == b {
                prop_assert_eq!(h(&a), h(&b));
            }
        }

        #[test]
        fn value_total_order_is_consistent(a in arb_value(), b in arb_value(), c in arb_value()) {
            use std::cmp::Ordering;
            // antisymmetry
            if a.cmp(&b) == Ordering::Less {
                prop_assert_eq!(b.cmp(&a), Ordering::Greater);
            }
            // transitivity (spot check)
            if a.cmp(&b) != Ordering::Greater && b.cmp(&c) != Ordering::Greater {
                prop_assert_ne!(a.cmp(&c), Ordering::Greater);
            }
        }

        #[test]
        fn csv_roundtrip_str_tables(t in arb_str_table()) {
            let text = write_csv(&t);
            let dtypes = vec![DType::Str; t.arity()];
            let t2 = read_csv(&text, &dtypes).unwrap();
            prop_assert_eq!(t, t2);
        }

        #[test]
        fn vectorize_roundtrip(t in arb_str_table()) {
            let v = t.vectorize();
            prop_assert_eq!(v.len(), t.num_cells());
            let t2 = Table::from_vector(t.schema().clone(), v);
            prop_assert_eq!(t, t2);
        }

        #[test]
        fn full_mask_is_identity_empty_mask_is_all_null(t in arb_str_table()) {
            let all = vec![true; t.num_cells()];
            prop_assert_eq!(t.masked_keep(&all), t.clone());
            let none = vec![false; t.num_cells()];
            let m = t.masked_keep(&none);
            prop_assert!(m.cells_with_values().all(|(_, v)| v.is_null()));
        }

        #[test]
        fn diff_apply_roundtrip(a in arb_str_table()) {
            // mutate a few cells deterministically
            let mut b = a.clone();
            for (i, cell) in a.cells().enumerate() {
                if i % 3 == 0 {
                    b.set(cell, Value::str("MUT"));
                }
            }
            let d = diff(&a, &b);
            prop_assert_eq!(apply(&a, &d), b);
        }

        #[test]
        fn sql_eq_is_symmetric(a in arb_value(), b in arb_value()) {
            prop_assert_eq!(a.sql_eq(&b), b.sql_eq(&a));
            prop_assert_eq!(a.sql_ne(&b), b.sql_ne(&a));
            // eq and ne are mutually exclusive
            prop_assert!(!(a.sql_eq(&b) && a.sql_ne(&b)));
        }
    }
}
