//! Cell values.
//!
//! A [`Value`] is the dynamically-typed content of a single table cell. The
//! repair and explanation machinery treats tables as collections of values
//! that can be compared, counted, hashed, and — crucially for the cell-level
//! Shapley game of the paper (§2.2) — *masked out* by replacing them with
//! [`Value::Null`].
//!
//! # Null semantics
//!
//! Denial constraints compare pairs of cells. Following the convention used
//! by the paper's cell game (a cell outside the coalition "does not
//! participate" in the table), every comparison in which either side is
//! `Null` evaluates to *false*, for every operator including `!=`. This makes
//! a nulled-out cell incapable of contributing to a constraint violation,
//! which is exactly the semantics required for `S ⊆ T^d` coalitions where
//! all cells outside `S` are set to null.

use std::borrow::Cow;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// The dynamic type of a [`Value`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float (total order via `f64::total_cmp`).
    Float,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DType::Int => write!(f, "int"),
            DType::Float => write!(f, "float"),
            DType::Str => write!(f, "str"),
            DType::Bool => write!(f, "bool"),
        }
    }
}

/// A single table-cell value.
///
/// `Value` implements a *total* equality, ordering and hashing (floats are
/// compared with [`f64::total_cmp`] and hashed by bit pattern), so values can
/// be used as `HashMap` keys when building column histograms. Note that the
/// `Eq`/`Ord` impls are representational: `Null == Null` is `true` here.
/// Constraint evaluation, which needs SQL-style three-valued-ish logic, goes
/// through [`Value::sql_cmp`] instead, where any comparison involving `Null`
/// is vacuously false.
#[derive(Debug, Clone)]
pub enum Value {
    /// The absent value. Used for masked-out coalition cells.
    Null,
    /// A *labeled* null (a "marked null" in database-theory terms): an
    /// unknown value that is nonetheless **distinct from every concrete
    /// value and from every differently-labeled null**. Equality against it
    /// never holds; inequality (`sql_ne`) against a concrete value or a
    /// different label holds. Labeled nulls never vote in statistics
    /// ([`Value::is_concrete`] is the filter). The cell-level Shapley game's
    /// `Distinct` masking mode is built on these.
    LabeledNull(u64),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// Construct an integer value.
    pub fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Construct a float value.
    pub fn float(x: f64) -> Self {
        Value::Float(x)
    }

    /// `true` iff the value is [`Value::Null`] (the plain, unlabeled null).
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// `true` iff the value carries information: neither a plain null nor a
    /// labeled null. Statistics (histograms, samplers, repair-mode votes)
    /// only count concrete values.
    pub fn is_concrete(&self) -> bool {
        !matches!(self, Value::Null | Value::LabeledNull(_))
    }

    /// The dynamic type of this value, or `None` for (labeled) nulls.
    pub fn dtype(&self) -> Option<DType> {
        match self {
            Value::Null | Value::LabeledNull(_) => None,
            Value::Int(_) => Some(DType::Int),
            Value::Float(_) => Some(DType::Float),
            Value::Str(_) => Some(DType::Str),
            Value::Bool(_) => Some(DType::Bool),
        }
    }

    /// Borrow the string content if this is a `Str` value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Extract an integer if this is an `Int` value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Extract a float; integers widen losslessly-enough for statistics.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Extract a boolean if this is a `Bool` value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// SQL-style *ordering* comparison: `None` if either side is a (labeled)
    /// null or the types are incomparable, otherwise the ordering.
    ///
    /// `Int` and `Float` compare numerically with each other; all other
    /// cross-type comparisons are incomparable (`None`), which makes the
    /// corresponding constraint predicate false rather than a panic — a
    /// black-box repair algorithm must never crash on a weird coalition
    /// table. Labeled nulls have no position in any order.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::LabeledNull(_), _) | (_, Value::LabeledNull(_)) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => Some(a.total_cmp(b)),
            (Value::Int(a), Value::Float(b)) => Some((*a as f64).total_cmp(b)),
            (Value::Float(a), Value::Int(b)) => Some(a.total_cmp(&(*b as f64))),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// SQL-style equality: false if either side is a plain null. Labeled
    /// nulls are equal only to the *same label*.
    pub fn sql_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::LabeledNull(a), Value::LabeledNull(b)) => a == b,
            _ => self.sql_cmp(other) == Some(Ordering::Equal),
        }
    }

    /// SQL-style inequality: false if either side is a plain null (note:
    /// *not* the negation of [`Value::sql_eq`]). A labeled null is distinct
    /// from every concrete value and from every differently-labeled null.
    pub fn sql_ne(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => false,
            (Value::LabeledNull(a), Value::LabeledNull(b)) => a != b,
            (Value::LabeledNull(_), _) | (_, Value::LabeledNull(_)) => true,
            _ => matches!(
                self.sql_cmp(other),
                Some(Ordering::Less) | Some(Ordering::Greater)
            ),
        }
    }

    /// Render the value the way the CSV writer and the reports do.
    ///
    /// Nulls render as the empty string; this is the inverse of
    /// [`Value::parse_as`] for non-ambiguous inputs.
    pub fn render(&self) -> Cow<'_, str> {
        match self {
            Value::Null => Cow::Borrowed(""),
            Value::LabeledNull(id) => Cow::Owned(format!("\u{22a5}{id}")),
            Value::Int(i) => Cow::Owned(i.to_string()),
            Value::Float(x) => Cow::Owned(format!("{x}")),
            Value::Str(s) => Cow::Borrowed(s.as_str()),
            Value::Bool(b) => Cow::Owned(b.to_string()),
        }
    }

    /// Parse a textual field into a value of dtype `dt`. Empty text is null.
    pub fn parse_as(text: &str, dt: DType) -> Result<Value, ValueParseError> {
        if text.is_empty() {
            return Ok(Value::Null);
        }
        match dt {
            DType::Int => text
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|_| ValueParseError::new(text, dt)),
            DType::Float => text
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| ValueParseError::new(text, dt)),
            DType::Str => Ok(Value::Str(text.to_string())),
            DType::Bool => match text {
                "true" | "True" | "TRUE" | "1" => Ok(Value::Bool(true)),
                "false" | "False" | "FALSE" | "0" => Ok(Value::Bool(false)),
                _ => Err(ValueParseError::new(text, dt)),
            },
        }
    }
}

/// Error produced when a textual field cannot be parsed at the declared type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueParseError {
    /// The offending text.
    pub text: String,
    /// The type it was supposed to have.
    pub expected: DType,
}

impl ValueParseError {
    fn new(text: &str, expected: DType) -> Self {
        ValueParseError {
            text: text.to_string(),
            expected,
        }
    }
}

impl fmt::Display for ValueParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot parse {:?} as {}", self.text, self.expected)
    }
}

impl std::error::Error for ValueParseError {}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::LabeledNull(a), Value::LabeledNull(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b) == Ordering::Equal,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// A total representational order used for deterministic tie-breaking in
    /// rankings and histograms: `Null < Bool < Int/Float (numeric) < Str`.
    fn cmp(&self, other: &Self) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::LabeledNull(_) => 1,
                Value::Bool(_) => 2,
                Value::Int(_) | Value::Float(_) => 3,
                Value::Str(_) => 4,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::LabeledNull(a), Value::LabeledNull(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).total_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.total_cmp(&(*b as f64)),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            _ => rank(self).cmp(&rank(other)),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::LabeledNull(id) => {
                state.write_u8(9);
                id.hash(state);
            }
            Value::Bool(b) => {
                state.write_u8(1);
                b.hash(state);
            }
            Value::Int(i) => {
                state.write_u8(2);
                i.hash(state);
            }
            Value::Float(x) => {
                // Hash integral floats like the equal Int so that
                // cross-typed numeric histograms merge; otherwise bitwise.
                if x.fract() == 0.0 && *x >= i64::MIN as f64 && *x <= i64::MAX as f64 {
                    state.write_u8(2);
                    (*x as i64).hash(state);
                } else {
                    state.write_u8(3);
                    x.to_bits().hash(state);
                }
            }
            Value::Str(s) => {
                state.write_u8(4);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    /// Renders like [`Value::render`] except that nulls display as `∅` for
    /// human-facing output.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "∅"),
            other => write!(f, "{}", other.render()),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn h(v: &Value) -> u64 {
        let mut s = DefaultHasher::new();
        v.hash(&mut s);
        s.finish()
    }

    #[test]
    fn null_comparisons_are_vacuously_false() {
        let n = Value::Null;
        let x = Value::int(3);
        assert!(!n.sql_eq(&x));
        assert!(!x.sql_eq(&n));
        assert!(!n.sql_ne(&x));
        assert!(!x.sql_ne(&n));
        assert!(!n.sql_eq(&n));
        assert!(!n.sql_ne(&n));
        assert_eq!(n.sql_cmp(&x), None);
    }

    #[test]
    fn sql_ne_is_not_negated_eq_for_incomparable() {
        let a = Value::str("x");
        let b = Value::int(1);
        assert!(!a.sql_eq(&b));
        assert!(!a.sql_ne(&b));
    }

    #[test]
    fn numeric_cross_type_comparison() {
        assert!(Value::int(2).sql_eq(&Value::float(2.0)));
        assert_eq!(
            Value::int(1).sql_cmp(&Value::float(1.5)),
            Some(Ordering::Less)
        );
        assert!(Value::float(3.5).sql_ne(&Value::int(3)));
    }

    #[test]
    fn representational_eq_differs_from_sql_eq_on_null() {
        assert_eq!(Value::Null, Value::Null);
        assert!(!Value::Null.sql_eq(&Value::Null));
    }

    #[test]
    fn float_total_eq_handles_nan() {
        let nan = Value::float(f64::NAN);
        assert_eq!(nan, nan.clone());
        assert_eq!(h(&nan), h(&nan.clone()));
    }

    #[test]
    fn hash_consistent_with_eq_for_numeric() {
        let a = Value::int(7);
        let b = Value::float(7.0);
        assert_eq!(a.sql_cmp(&b), Some(Ordering::Equal));
        assert_eq!(h(&a), h(&b));
    }

    #[test]
    fn parse_round_trip() {
        for (t, d, v) in [
            ("42", DType::Int, Value::int(42)),
            ("-1", DType::Int, Value::int(-1)),
            ("2.5", DType::Float, Value::float(2.5)),
            ("hi", DType::Str, Value::str("hi")),
            ("true", DType::Bool, Value::Bool(true)),
            ("", DType::Int, Value::Null),
            ("", DType::Str, Value::Null),
        ] {
            assert_eq!(Value::parse_as(t, d).unwrap(), v);
        }
        assert!(Value::parse_as("xyz", DType::Int).is_err());
        assert!(Value::parse_as("maybe", DType::Bool).is_err());
    }

    #[test]
    fn render_parse_inverse_for_str() {
        let v = Value::str("Real Madrid");
        let r = v.render().into_owned();
        assert_eq!(Value::parse_as(&r, DType::Str).unwrap(), v);
    }

    #[test]
    fn total_order_is_deterministic() {
        let mut vs = [
            Value::str("b"),
            Value::Null,
            Value::int(3),
            Value::float(2.5),
            Value::Bool(true),
            Value::str("a"),
        ];
        vs.sort();
        assert_eq!(vs[0], Value::Null);
        assert_eq!(vs[1], Value::Bool(true));
        assert_eq!(vs[2], Value::float(2.5));
        assert_eq!(vs[3], Value::int(3));
        assert_eq!(vs[4], Value::str("a"));
    }

    #[test]
    fn display_marks_null() {
        assert_eq!(Value::Null.to_string(), "∅");
        assert_eq!(Value::str("x").to_string(), "x");
        assert_eq!(Value::int(5).to_string(), "5");
    }

    #[test]
    fn dtype_reporting() {
        assert_eq!(Value::Null.dtype(), None);
        assert_eq!(Value::int(1).dtype(), Some(DType::Int));
        assert_eq!(Value::str("s").dtype(), Some(DType::Str));
    }
}
