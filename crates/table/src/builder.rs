//! Ergonomic table construction for tests, examples, and generators.

use crate::schema::Schema;
use crate::table::Table;
use crate::value::{DType, Value};

/// Fluent builder: declare columns, then push rows of `Into<Value>` items.
///
/// ```
/// use trex_table::{TableBuilder, DType, Value};
/// let t = TableBuilder::new()
///     .column("Team", DType::Str)
///     .column("Year", DType::Int)
///     .row(["Real Madrid".into(), Value::int(2019)])
///     .row([Value::from("Barcelona"), 2019i64.into()])
///     .build();
/// assert_eq!(t.num_rows(), 2);
/// ```
#[derive(Debug, Default)]
pub struct TableBuilder {
    columns: Vec<(String, DType)>,
    rows: Vec<Vec<Value>>,
}

impl TableBuilder {
    /// Start an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a column. All columns must be declared before the first row.
    ///
    /// # Panics
    /// Panics if called after a row has been pushed.
    pub fn column(mut self, name: impl Into<String>, dtype: DType) -> Self {
        assert!(
            self.rows.is_empty(),
            "declare all columns before pushing rows"
        );
        self.columns.push((name.into(), dtype));
        self
    }

    /// Declare several string columns at once.
    pub fn str_columns<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        for n in names {
            self = self.column(n, DType::Str);
        }
        self
    }

    /// Push a row.
    ///
    /// # Panics
    /// Panics on arity mismatch.
    pub fn row<I>(mut self, values: I) -> Self
    where
        I: IntoIterator<Item = Value>,
    {
        let row: Vec<Value> = values.into_iter().collect();
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row arity {} != declared columns {}",
            row.len(),
            self.columns.len()
        );
        self.rows.push(row);
        self
    }

    /// Push a row of string cells.
    pub fn str_row<I, S>(self, values: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.row(values.into_iter().map(|s| Value::Str(s.into())))
    }

    /// Finish, producing the table.
    pub fn build(self) -> Table {
        let schema = Schema::new(self.columns);
        Table::from_rows(schema, self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrId;

    #[test]
    fn builds_mixed_types() {
        let t = TableBuilder::new()
            .column("A", DType::Str)
            .column("N", DType::Int)
            .row([Value::str("x"), Value::int(1)])
            .build();
        assert_eq!(t.arity(), 2);
        assert_eq!(t.value(0, AttrId(1)), &Value::int(1));
    }

    #[test]
    fn str_rows_shortcut() {
        let t = TableBuilder::new()
            .str_columns(["A", "B"])
            .str_row(["x", "y"])
            .str_row(["p", "q"])
            .build();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.value(1, AttrId(0)), &Value::str("p"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let _ = TableBuilder::new()
            .str_columns(["A", "B"])
            .str_row(["only-one"]);
    }

    #[test]
    #[should_panic(expected = "before pushing rows")]
    fn columns_frozen_after_rows() {
        let _ = TableBuilder::new()
            .column("A", DType::Str)
            .str_row(["x"])
            .column("B", DType::Str);
    }
}
