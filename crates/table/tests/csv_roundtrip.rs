//! Property-style CSV round-trip test: random tables (seeded `rand`, so
//! failures reproduce) are serialized with `write_csv` and parsed back with
//! `read_csv`, asserting exact equality. The value generator is biased hard
//! toward the edges the writer/reader pair must preserve: quoting (commas,
//! quotes, CR/LF inside fields), the null vs quoted-empty-string
//! distinction, fields that look numeric in `Str` columns, and negative /
//! integral / high-magnitude floats (finite `f64` text round-trips exactly
//! via Rust's shortest-representation `Display`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trex_table::{read_csv, read_csv_strings, write_csv, DType, Schema, Table, Value};

/// Strings concentrated on CSV-hostile shapes.
fn arb_string(rng: &mut StdRng) -> String {
    const PALETTE: [&str; 12] = [
        "a", "B", "7", " ", ",", "\"", "\n", "\r", "é", "…", "'", "x,\"y\"",
    ];
    let len = rng.gen_range(0usize..6);
    (0..len)
        .map(|_| PALETTE[rng.gen_range(0..PALETTE.len())])
        .collect()
}

fn arb_value(rng: &mut StdRng, dt: DType) -> Value {
    // 1-in-5 cells are null in every column type.
    if rng.gen_bool(0.2) {
        return Value::Null;
    }
    match dt {
        DType::Str => match rng.gen_range(0u8..8) {
            // Quoted-empty-string edge: distinct from Null on the wire.
            0 => Value::Str(String::new()),
            // Numeric look-alikes must stay strings under Str typing.
            1 => Value::str("123"),
            2 => Value::str("-4.5"),
            3 => Value::str("true"),
            _ => Value::Str(arb_string(rng)),
        },
        DType::Int => Value::Int(rng.gen_range(i64::MIN..=i64::MAX)),
        DType::Float => match rng.gen_range(0u8..4) {
            // Integral floats print without a dot ("1") and must come back equal.
            0 => Value::Float(rng.gen_range(-100i64..100) as f64),
            1 => Value::Float(rng.gen_range(-1e-6f64..1e-6)),
            _ => Value::Float(rng.gen_range(-1e12f64..1e12)),
        },
        DType::Bool => Value::Bool(rng.gen_bool(0.5)),
    }
}

fn arb_table(rng: &mut StdRng) -> (Table, Vec<DType>) {
    const DTYPES: [DType; 4] = [DType::Str, DType::Int, DType::Float, DType::Bool];
    let arity = rng.gen_range(1usize..6);
    let dtypes: Vec<DType> = (0..arity)
        .map(|_| DTYPES[rng.gen_range(0..DTYPES.len())])
        .collect();
    let schema = Schema::new(
        dtypes
            .iter()
            .enumerate()
            .map(|(i, dt)| (format!("C{i}"), *dt)),
    );
    let rows = rng.gen_range(0usize..10);
    let rows = (0..rows)
        .map(|_| dtypes.iter().map(|dt| arb_value(rng, *dt)).collect())
        .collect();
    (Table::from_rows(schema, rows), dtypes)
}

#[test]
fn random_typed_tables_roundtrip_exactly() {
    let mut rng = StdRng::seed_from_u64(0xC5A0);
    for case in 0..500 {
        let (table, dtypes) = arb_table(&mut rng);
        let text = write_csv(&table);
        let back = read_csv(&text, &dtypes)
            .unwrap_or_else(|e| panic!("case {case}: read_csv failed: {e}\n--- csv ---\n{text}"));
        assert_eq!(
            table, back,
            "case {case}: round-trip mismatch\n--- csv ---\n{text}"
        );
    }
}

#[test]
fn random_string_tables_roundtrip_through_read_csv_strings() {
    let mut rng = StdRng::seed_from_u64(0x57E1);
    for case in 0..500 {
        let arity = rng.gen_range(1usize..5);
        let schema = Schema::of_strings((0..arity).map(|i| format!("C{i}")));
        let rows = rng.gen_range(0usize..8);
        let rows = (0..rows)
            .map(|_| {
                (0..arity)
                    .map(|_| arb_value(&mut rng, DType::Str))
                    .collect()
            })
            .collect();
        let table = Table::from_rows(schema, rows);
        let text = write_csv(&table);
        let back = read_csv_strings(&text).unwrap_or_else(|e| {
            panic!("case {case}: read_csv_strings failed: {e}\n--- csv ---\n{text}")
        });
        assert_eq!(
            table, back,
            "case {case}: round-trip mismatch\n--- csv ---\n{text}"
        );
    }
}

/// The two wire encodings the cell game depends on: absent field = Null,
/// quoted empty = empty string — checked across a random batch explicitly,
/// independent of full-table equality.
#[test]
fn null_and_empty_string_never_conflate() {
    let mut rng = StdRng::seed_from_u64(0x11FF);
    for _ in 0..200 {
        let schema = Schema::of_strings(["A", "B"]);
        let left = if rng.gen_bool(0.5) {
            Value::Null
        } else {
            Value::Str(String::new())
        };
        let right = arb_value(&mut rng, DType::Str);
        let table = Table::from_rows(schema, vec![vec![left.clone(), right.clone()]]);
        let back = read_csv_strings(&write_csv(&table)).unwrap();
        assert_eq!(back.row(0)[0], left, "lhs changed across the wire");
        assert_eq!(back.row(0)[1], right, "rhs changed across the wire");
    }
}
