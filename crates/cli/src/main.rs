//! `trex` — the T-REx system as a command-line tool.
//!
//! Mirrors the demo's three screens (paper §3/§4) over files instead of a
//! web GUI:
//!
//! ```text
//! trex violations --table dirty.csv --dcs constraints.txt
//! trex repair     --table dirty.csv --dcs constraints.txt --engine holoclean
//! trex explain    --table dirty.csv --dcs constraints.txt --cell t5.Country \
//!                 --engine rules --rules algorithm1.rules --cells --samples 500
//! trex demo
//! ```
//!
//! Engines: `holoclean` (default; add `--train` for perceptron calibration),
//! `rules` (requires `--rules FILE` in the `C1: Attr <- action` syntax),
//! `chase`, `holistic`.

mod args;

use args::{ArgError, Args};
use std::process::ExitCode;
use trex::{
    render_explanation_screen, render_input_screen, render_repair_screen, AdaptiveConfig,
    Explainer, MaskMode, Session,
};
use trex_constraints::{find_all_violations_par, parse_dcs, DenialConstraint};
use trex_repair::{FdChaseRepair, HolisticRepair, HoloCleanStyle, RepairAlgorithm, RuleRepair};
use trex_shapley::{ExecConfig, SamplingConfig};
use trex_table::{read_csv_strings, CellRef, Table};

const USAGE: &str = "\
trex — table repair explanations via Shapley values

USAGE:
  trex violations --table FILE.csv --dcs FILE.txt [exec flags]
  trex repair     --table FILE.csv --dcs FILE.txt [exec flags] [engine flags]
  trex explain    --table FILE.csv --dcs FILE.txt --cell tROW.Attr
                  [--cells] [--samples N] [--mask null|distinct|replace]
                  [--adaptive] [--tolerance F] [--batch N] [--max-samples N]
                  [exec flags] [engine flags]
  trex serve      --table FILE.csv --dcs FILE.txt [--addr HOST:PORT]
                  [--http-threads N] [exec flags] [engine flags]
  trex lint       --table FILE.csv --dcs FILE.txt [--json] [exec flags]
  trex mine       --table FILE.csv [--max-predicates N] [--order]
  trex datagen    --schema laliga|soccer|adult|sensor [--rows N] [--seed N]
                  [--rate F] [--skew F] [--out DIR]
  trex demo

ENGINE FLAGS:
  --engine holoclean   probabilistic cleaner (default); add --train to calibrate
  --engine rules       the paper's Algorithm 1 scheme; requires --rules FILE
  --engine chase       FD-chase baseline
  --engine holistic    conflict-hypergraph baseline

EXEC FLAGS:
  --threads N, --schedule POLICY, --oracle-cap N, --oracle-batch N, and
  --seed N form one execution-configuration surface, parsed identically by
  violations, repair, and explain (each command consumes the knobs that
  apply to it).
  --threads N (default: all hardware threads; 0 also means that) runs
  explain's cell sampling on N workers; for violations and repair it
  splits the row-pair violation scan, whose output is identical at any
  thread count (a wall-time knob only). --seed N (default 0) seeds
  explain's sampling. --schedule picks how explain's sampling distributes
  work:
  player (workers claim whole cells; output identical to the serial
  estimator at ANY thread count), steal (player-sharding plus round
  stealing on --adaptive runs: idle workers take over rounds of a hot
  cell's budget; output identical at ANY thread count to the round-
  laddered serial estimator — a different, equally valid stream than
  player's), budget (every cell's sample budget is split across workers;
  deterministic per (--seed, --threads) pair), or auto (default: player
  when the table has at least 4 cells per worker).
  --prune-redundant skips the violation scans of constraints the static
  analyzer proves can never be violated (run trex lint to see which);
  witness output is identical with or without it — only wasted work is
  skipped.

LINT:
  trex lint runs the static analyzer over a constraint program: schema
  typecheck (unknown attributes, type mismatches), per-constraint
  satisfiability (contradictions, empty intervals, tautologies), pairwise
  subsumption, and a per-constraint scan-cost plan. Exit code 1 if any
  error-severity diagnostic is found, 0 otherwise (warnings don't fail).
  --json emits one machine-readable document instead of text.

ORACLE CAPACITY:
  --oracle-cap N bounds the repair-oracle memo cache of explain to N
  entries (second-chance eviction once full; 0 disables caching). Results
  are identical at any capacity — a smaller cache only recomputes more.
  Default: 1048576 entries.
  --oracle-batch N (must be >= 1; default unbounded) caps how many
  cache-missing coalition queries each oracle dispatch carries. Results
  are identical at any cap — the knob only matters for throughput when a
  per-call-latency oracle backend answers the batches (see the library's
  OracleBackend trait; the built-in engines answer inline).

SERVE:
  trex serve loads one (table, constraints, engine) triple and answers
  HTTP/JSON requests on --addr (default 127.0.0.1:7878) with
  --http-threads workers (default 4) over one shared session: GET
  /health, GET /violations, POST /repair, GET /explain (add
  budget_ms=N or stream=1 for the anytime chunked NDJSON stream of
  running Shapley estimates), POST /cell, POST and DELETE /constraint.
  Every endpoint takes the exec flags as query parameters (threads=4&
  seed=7&...), validated exactly like the command-line flags; exec flags
  given to serve itself set the session defaults.

DATAGEN:
  trex datagen generates a scenario-corpus member and writes the files the
  other subcommands consume: SCHEMA_clean.csv, SCHEMA_dirty.csv (with
  injected errors), SCHEMA.dcs (constraints in the paper syntax),
  SCHEMA.rules (the schema's Algorithm 1 for --engine rules), and
  SCHEMA_truth.tsv (the injected-error ground truth, cell/from/to). --rate
  is the total error rate, split across typo/swap/null/out-of-domain/
  duplicate kinds with exact integer accounting; --skew is the Zipf
  exponent for sensor keys and duplicate donors; the same --seed always
  reproduces byte-identical files.

ADAPTIVE BUDGET (explain --cells --adaptive):
  instead of a fixed --samples per cell, each cell is sampled under
  replacement semantics until its 95%-confidence half-width drops below
  --tolerance (default 0.05) or its --max-samples budget (default 10000)
  runs out, in --batch-sized rounds (default 100); cells with tight
  estimates stop early and the budget concentrates on contested ones.
  Not combinable with --mask (adaptive implies replacement semantics).

FILES:
  tables are CSV with a header row (all columns read as strings);
  constraints use the paper syntax, one per line:
      C1: !(t1.Team = t2.Team & t1.City != t2.City)
  rule files (for --engine rules), one per line:
      C1: City <- most_common
      C2: Country <- most_common_given(City)
";

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match args.command.as_deref() {
        Some("violations") => cmd_violations(&args).map(|()| ExitCode::SUCCESS),
        Some("repair") => cmd_repair(&args).map(|()| ExitCode::SUCCESS),
        Some("explain") => cmd_explain(&args).map(|()| ExitCode::SUCCESS),
        Some("serve") => cmd_serve(&args).map(|()| ExitCode::SUCCESS),
        Some("lint") => cmd_lint(&args),
        Some("mine") => cmd_mine(&args).map(|()| ExitCode::SUCCESS),
        Some("datagen") => cmd_datagen(&args).map(|()| ExitCode::SUCCESS),
        Some("demo") => cmd_demo(&args).map(|()| ExitCode::SUCCESS),
        Some("help") | None => {
            println!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        Some(other) => Err(ArgError(format!("unknown command {other:?}"))),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn load_inputs(args: &Args) -> Result<(Table, Vec<DenialConstraint>), ArgError> {
    let table_path = args.require("table")?;
    let dcs_path = args.require("dcs")?;
    let table_text = std::fs::read_to_string(table_path)
        .map_err(|e| ArgError(format!("cannot read {table_path}: {e}")))?;
    let table =
        read_csv_strings(&table_text).map_err(|e| ArgError(format!("{table_path}: {e}")))?;
    let dcs_text = std::fs::read_to_string(dcs_path)
        .map_err(|e| ArgError(format!("cannot read {dcs_path}: {e}")))?;
    let dcs = parse_dcs(&dcs_text).map_err(|e| ArgError(format!("{dcs_path}: {e}")))?;
    Ok((table, dcs))
}

/// Build the selected engine under the shared execution configuration
/// (engines consume its thread count for their violation scans; `chase`
/// does no violation scanning, so the config is a no-op for it).
fn load_engine(args: &Args, cfg: &ExecConfig) -> Result<Box<dyn RepairAlgorithm>, ArgError> {
    match args.get("engine").unwrap_or("holoclean") {
        "holoclean" => {
            let engine = if args.has("train") {
                HoloCleanStyle::new().with_training()
            } else {
                HoloCleanStyle::new()
            };
            Ok(Box::new(engine.with_exec(cfg)))
        }
        "rules" => {
            let path = args
                .require("rules")
                .map_err(|_| ArgError("--engine rules requires --rules FILE".to_string()))?;
            let text = std::fs::read_to_string(path)
                .map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
            let engine =
                RuleRepair::parse_rules(&text).map_err(|e| ArgError(format!("{path}: {e}")))?;
            Ok(Box::new(engine.with_exec(cfg)))
        }
        "chase" => Ok(Box::new(FdChaseRepair::new())),
        "holistic" => Ok(Box::new(HolisticRepair::new().with_exec(cfg))),
        other => Err(ArgError(format!(
            "unknown engine {other:?} (holoclean | rules | chase | holistic)"
        ))),
    }
}

/// The CLI never attaches an `OracleBackend`, so a requested
/// `--oracle-batch` can never group anything — say so instead of silently
/// ignoring the flag. (The server API rejects the same condition outright;
/// both sides share this one message.)
fn warn_unbatchable(cfg: &ExecConfig) {
    if cfg.oracle_batch().is_some() {
        eprintln!("warning: {}", ExecConfig::ORACLE_BATCH_WITHOUT_BACKEND);
    }
}

/// Parse a cell reference like `t5.Country` or `5.Country` (1-based row).
fn parse_cell(table: &Table, spec: &str) -> Result<CellRef, ArgError> {
    let (row_part, attr_part) = spec
        .split_once('.')
        .ok_or_else(|| ArgError(format!("--cell {spec:?}: expected tROW.Attr")))?;
    let row_text = row_part.strip_prefix('t').unwrap_or(row_part);
    let row: usize = row_text
        .parse()
        .map_err(|_| ArgError(format!("--cell {spec:?}: bad row {row_text:?}")))?;
    if row == 0 || row > table.num_rows() {
        return Err(ArgError(format!(
            "--cell {spec:?}: row {row} out of range 1..={}",
            table.num_rows()
        )));
    }
    let attr = table
        .schema()
        .resolve(attr_part)
        .ok_or_else(|| ArgError(format!("--cell {spec:?}: no attribute {attr_part:?}")))?;
    Ok(CellRef::new(row - 1, attr))
}

fn cmd_violations(args: &Args) -> Result<(), ArgError> {
    let (table, dcs) = load_inputs(args)?;
    let cfg = args.exec_config()?;
    args.reject_unknown()?;
    let resolved: Result<Vec<_>, _> = dcs.iter().map(|d| d.resolved(table.schema())).collect();
    let resolved = resolved.map_err(|e| ArgError(e.to_string()))?;
    println!("{}", render_input_screen(&table, &dcs));
    let violations = if cfg.prune_redundant() {
        trex_constraints::find_all_violations_par_pruned(&resolved, &table, cfg.threads())
    } else {
        find_all_violations_par(&resolved, &table, cfg.threads())
    };
    if violations.is_empty() {
        println!("table is clean: no violations.");
        return Ok(());
    }
    println!("{} violation(s):", violations.len());
    for v in &violations {
        println!("  {v}");
    }
    Ok(())
}

fn cmd_repair(args: &Args) -> Result<(), ArgError> {
    let (table, dcs) = load_inputs(args)?;
    let cfg = args.exec_config()?;
    let engine = load_engine(args, &cfg)?;
    args.reject_unknown()?;
    let result = engine.repair(&dcs, &table);
    println!("engine: {}\n", engine.name());
    println!("{}", render_repair_screen(&table, &result.changes));
    Ok(())
}

fn cmd_explain(args: &Args) -> Result<(), ArgError> {
    let (table, dcs) = load_inputs(args)?;
    let cfg = args.exec_config()?;
    warn_unbatchable(&cfg);
    let engine = load_engine(args, &cfg)?;
    let cell_spec = args.require("cell")?.to_string();
    let cell = parse_cell(&table, &cell_spec)?;
    let want_cells = args.has("cells");
    let samples_given = args.get("samples").is_some();
    let samples: usize = args.get_parsed("samples", 500)?;
    let seed: u64 = cfg.seed().unwrap_or(0);
    let adaptive = args.has("adaptive");
    let adaptive_flags_given = ["tolerance", "batch", "max-samples"]
        .iter()
        .find(|f| args.get(f).is_some());
    let tolerance: f64 = args.get_parsed("tolerance", 0.05)?;
    let batch: usize = args.get_parsed("batch", 100)?;
    let max_samples: usize = args.get_parsed("max-samples", 10_000)?;
    let mask = args.get("mask").map(str::to_string);
    args.reject_unknown()?;
    if adaptive && mask.is_some() {
        return Err(ArgError(
            "--adaptive implies replacement semantics; drop --mask".to_string(),
        ));
    }
    if adaptive && !want_cells {
        return Err(ArgError(
            "--adaptive only affects cell explanations; add --cells".to_string(),
        ));
    }
    if adaptive && samples_given {
        return Err(ArgError(
            "--adaptive budgets with --tolerance/--batch/--max-samples, not --samples".to_string(),
        ));
    }
    if let (false, Some(flag)) = (adaptive, adaptive_flags_given) {
        return Err(ArgError(format!("--{flag} requires --adaptive")));
    }
    if tolerance <= 0.0 || tolerance.is_nan() {
        return Err(ArgError(format!(
            "--tolerance must be positive (got {tolerance})"
        )));
    }
    if batch == 0 {
        return Err(ArgError("--batch must be at least 1".to_string()));
    }

    let explainer = Explainer::new(engine.as_ref()).with_config(cfg);
    let constraints = explainer
        .explain_constraints(&dcs, &table, cell)
        .map_err(|e| ArgError(e.to_string()))?;
    let mut adaptive_note = None;
    let cells = if want_cells && adaptive {
        let config = AdaptiveConfig {
            tolerance,
            batch,
            max_samples,
            seed,
            ..AdaptiveConfig::default()
        };
        let (out, converged) = explainer
            .explain_cells_adaptive(&dcs, &table, cell, config)
            .map_err(|e| ArgError(e.to_string()))?;
        let done = converged.iter().filter(|c| **c).count();
        adaptive_note = Some(format!(
            "adaptive budget: {done}/{} cells converged to ±{tolerance} \
             (95% CI; batch {batch}, cap {max_samples} samples/cell)",
            converged.len()
        ));
        Some(out)
    } else if want_cells {
        let config = SamplingConfig { samples, seed };
        let out = match mask.as_deref().unwrap_or("null") {
            "replace" => explainer.explain_cells_sampled(&dcs, &table, cell, config),
            "null" => explainer.explain_cells_masked(&dcs, &table, cell, MaskMode::Null, config),
            "distinct" => {
                explainer.explain_cells_masked(&dcs, &table, cell, MaskMode::Distinct, config)
            }
            other => {
                return Err(ArgError(format!(
                    "unknown mask {other:?} (null | distinct | replace)"
                )))
            }
        };
        Some(out.map_err(|e| ArgError(e.to_string()))?)
    } else {
        None
    };
    println!("engine: {}\n", engine.name());
    println!(
        "{}",
        render_explanation_screen(&cell_spec, Some(&constraints), cells.as_ref())
    );
    if let Some(note) = adaptive_note {
        println!("{note}");
    }
    Ok(())
}

/// `trex serve`: load one (table, constraints, engine) triple and answer
/// HTTP/JSON requests over a shared long-lived session until interrupted.
fn cmd_serve(args: &Args) -> Result<(), ArgError> {
    let (table, dcs) = load_inputs(args)?;
    let cfg = args.exec_config()?;
    warn_unbatchable(&cfg);
    let engine = load_engine(args, &cfg)?;
    let addr = args.get("addr").unwrap_or("127.0.0.1:7878").to_string();
    let http_threads: usize = args.get_parsed("http-threads", 4)?;
    args.reject_unknown()?;
    if http_threads == 0 {
        return Err(ArgError("--http-threads must be at least 1".to_string()));
    }
    let session = Session::new(engine, table, dcs).with_config(cfg);
    let config = trex_server::ServerConfig { addr, http_threads };
    let handle = trex_server::serve(session, &config)
        .map_err(|e| ArgError(format!("cannot bind {}: {e}", config.addr)))?;
    println!("trex-server listening on {}", handle.url());
    println!("  try: curl '{}/violations'", handle.url());
    println!(
        "       curl '{}/explain?cell=tROW.Attr&budget_ms=2000'",
        handle.url()
    );
    handle.join();
    Ok(())
}

/// `trex lint`: run the static analyzer over a constraint program and
/// report diagnostics plus the scan-cost plan. Exit code 1 iff any
/// error-severity diagnostic was found (warnings and infos exit 0).
fn cmd_lint(args: &Args) -> Result<ExitCode, ArgError> {
    let (table, dcs) = load_inputs(args)?;
    // Lint shares the exec-flag group with the scan commands so pipelines
    // can pass one flag set everywhere; only --prune-redundant affects its
    // report (the plan marks what a pruned scan would skip).
    let _cfg = args.exec_config()?;
    let json = args.has("json");
    args.reject_unknown()?;
    let analysis = trex_constraints::analyze_with_table(&dcs, &table);
    let (errors, warnings, infos) = analysis.counts();
    if json {
        let diags = analysis
            .diagnostics
            .iter()
            .map(|d| format!("    {}", d.to_json()))
            .collect::<Vec<_>>()
            .join(",\n");
        let plans = analysis
            .plans
            .iter()
            .map(|p| format!("    {}", p.to_json()))
            .collect::<Vec<_>>()
            .join(",\n");
        println!("{{");
        println!("  \"diagnostics\": [\n{diags}\n  ],");
        println!("  \"plans\": [\n{plans}\n  ],");
        println!(
            "  \"summary\": {{ \"constraints\": {}, \"errors\": {errors}, \
             \"warnings\": {warnings}, \"infos\": {infos} }}",
            dcs.len()
        );
        println!("}}");
    } else {
        for d in &analysis.diagnostics {
            println!("{d}");
        }
        if !analysis.plans.is_empty() {
            println!("\nscan plan ({} rows):", table.num_rows());
            for p in &analysis.plans {
                let joins = if p.join_attrs.is_empty() {
                    String::new()
                } else {
                    format!(" on {}", p.join_attrs.join(", "))
                };
                println!(
                    "  {:<12} {}{joins}: ~{} candidate pair(s)",
                    p.name,
                    p.strategy.label(),
                    p.estimated_pairs
                );
            }
        }
        println!(
            "\n{} constraint(s): {errors} error(s), {warnings} warning(s), {infos} info(s)",
            dcs.len()
        );
    }
    Ok(if analysis.has_errors() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn cmd_mine(args: &Args) -> Result<(), ArgError> {
    let table_path = args.require("table")?.to_string();
    let max_predicates: usize = args.get_parsed("max-predicates", 3)?;
    let order = args.has("order");
    args.reject_unknown()?;
    let text = std::fs::read_to_string(&table_path)
        .map_err(|e| ArgError(format!("cannot read {table_path}: {e}")))?;
    let table = read_csv_strings(&text).map_err(|e| ArgError(format!("{table_path}: {e}")))?;
    let dcs = trex_constraints::mine_dcs(
        &table,
        &trex_constraints::MineConfig {
            max_predicates,
            order_predicates: order,
        },
    );
    println!(
        "# {} minimal denial constraint(s) mined from {} ({} rows)",
        dcs.len(),
        table_path,
        table.num_rows()
    );
    for dc in &dcs {
        println!("{dc}");
    }
    Ok(())
}

fn cmd_datagen(args: &Args) -> Result<(), ArgError> {
    use trex_datagen::{generate_scenario, ErrorRates, ScenarioConfig, SchemaKind};
    let schema: SchemaKind = args
        .require("schema")?
        .parse()
        .map_err(|e: String| ArgError(e))?;
    let rows: usize = args.get_parsed("rows", 1000)?;
    let seed: u64 = args.get_parsed("seed", 0)?;
    let rate: f64 = args.get_parsed("rate", 0.005)?;
    let skew: f64 = args.get_parsed("skew", 1.0)?;
    let out_dir = args.get("out").unwrap_or(".").to_string();
    args.reject_unknown()?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(ArgError(format!("--rate must be in 0..=1 (got {rate})")));
    }
    if !skew.is_finite() || skew < 0.0 {
        return Err(ArgError(format!(
            "--skew must be finite and >= 0 (got {skew})"
        )));
    }

    let mut config = ScenarioConfig::new(schema, rows, seed);
    config.error.rates = Some(ErrorRates::split(rate));
    config.error.duplicate_skew = skew;
    config.sensor.skew = skew;
    let scenario = generate_scenario(&config);

    let dir = std::path::Path::new(&out_dir);
    std::fs::create_dir_all(dir).map_err(|e| ArgError(format!("cannot create {out_dir}: {e}")))?;
    let write = |name: String, contents: String| -> Result<String, ArgError> {
        let path = dir.join(&name);
        std::fs::write(&path, contents)
            .map_err(|e| ArgError(format!("cannot write {}: {e}", path.display())))?;
        Ok(path.display().to_string())
    };
    let mut truth = String::new();
    for ch in &scenario.injection.truth {
        truth.push_str(&format!("{}\t{}\t{}\n", ch.cell, ch.from, ch.to));
    }
    let mut dcs_text = String::new();
    for dc in &scenario.constraints {
        dcs_text.push_str(&format!("{dc}\n"));
    }
    let files = [
        write(
            format!("{schema}_clean.csv"),
            trex_table::write_csv(&scenario.clean),
        )?,
        write(
            format!("{schema}_dirty.csv"),
            trex_table::write_csv(scenario.dirty()),
        )?,
        write(format!("{schema}.dcs"), dcs_text)?,
        write(format!("{schema}.rules"), scenario.repairer.rules_text())?,
        write(format!("{schema}_truth.tsv"), truth)?,
    ];
    println!(
        "{schema}: {} rows, {} cells, {} injected error(s), fingerprint {:016x}",
        scenario.clean.num_rows(),
        scenario.clean.num_cells(),
        scenario.injection.truth.len(),
        scenario.fingerprint(),
    );
    for f in &files {
        println!("  wrote {f}");
    }
    println!(
        "\nnext: trex violations --table {} --dcs {}",
        files[1], files[2]
    );
    println!(
        "      trex repair --table {} --dcs {} --engine rules --rules {}",
        files[1], files[2], files[3]
    );
    Ok(())
}

fn cmd_demo(args: &Args) -> Result<(), ArgError> {
    args.reject_unknown()?;
    use trex_datagen::laliga;
    let dirty = laliga::dirty_table();
    let dcs = laliga::constraints();
    let alg = laliga::algorithm1();
    println!("{}", render_input_screen(&dirty, &dcs));
    let result = alg.repair(&dcs, &dirty);
    println!("{}", render_repair_screen(&dirty, &result.changes));
    let cell = laliga::cell_of_interest(&dirty);
    let explainer = Explainer::new(&alg);
    let constraints = explainer
        .explain_constraints(&dcs, &dirty, cell)
        .expect("the demo cell is repaired");
    let cells = explainer
        .explain_cells_masked(
            &dcs,
            &dirty,
            cell,
            MaskMode::Null,
            SamplingConfig {
                samples: 800,
                seed: 0,
            },
        )
        .expect("the demo cell is repaired");
    println!(
        "{}",
        render_explanation_screen("t5[Country]", Some(&constraints), Some(&cells))
    );
    // The interactive budget: instead of a fixed sample count, let each
    // cell run until its estimate is tight — dummies stop after two
    // batches, so the budget concentrates on the contested cells the
    // audience actually asks about.
    let config = AdaptiveConfig {
        tolerance: 0.05,
        batch: 100,
        max_samples: 4000,
        ..AdaptiveConfig::default()
    };
    let (adaptive, converged) = explainer
        .explain_cells_adaptive(&dcs, &dirty, cell, config)
        .expect("the demo cell is repaired");
    let done = converged.iter().filter(|c| **c).count();
    println!(
        "adaptive budget (replacement semantics): {done}/{} cells converged to \
         ±{} (95% CI, cap {} samples/cell); top cell: {}",
        converged.len(),
        config.tolerance,
        config.max_samples,
        adaptive
            .ranking
            .top()
            .map(|e| e.label.clone())
            .unwrap_or_default()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use trex_table::TableBuilder;

    fn table() -> Table {
        TableBuilder::new()
            .str_columns(["Team", "City"])
            .str_row(["A", "X"])
            .str_row(["B", "Y"])
            .build()
    }

    #[test]
    fn parse_cell_accepts_both_forms() {
        let t = table();
        let c = parse_cell(&t, "t2.City").unwrap();
        assert_eq!(c, CellRef::new(1, t.schema().id("City")));
        assert_eq!(
            parse_cell(&t, "1.Team").unwrap(),
            CellRef::new(0, t.schema().id("Team"))
        );
    }

    #[test]
    fn parse_cell_rejects_bad_specs() {
        let t = table();
        assert!(parse_cell(&t, "City").is_err());
        assert!(parse_cell(&t, "t0.City").is_err());
        assert!(parse_cell(&t, "t3.City").is_err());
        assert!(parse_cell(&t, "t1.Nope").is_err());
        assert!(parse_cell(&t, "tx.City").is_err());
    }

    #[test]
    fn exec_flags_share_one_validation_path_across_subcommands() {
        // The detailed knob coverage lives in args.rs next to exec_config;
        // here: every subcommand that takes execution flags goes through it
        // and reports the same errors.
        for command in ["explain", "repair", "violations"] {
            let a = Args::parse([command, "--threads", "4"]).unwrap();
            assert_eq!(a.exec_config().unwrap().threads(), 4, "{command}");
            let b = Args::parse([command, "--oracle-batch", "16"]).unwrap();
            assert_eq!(
                b.exec_config().unwrap().oracle_batch(),
                Some(16),
                "{command}"
            );
            let d = Args::parse([command, "--threads", "999999"]).unwrap();
            let err = d.exec_config().unwrap_err().to_string();
            assert!(err.contains("999999"), "{command}: {err}");
            assert!(err.contains("1024"), "{command}: {err}");
            let e = Args::parse([command, "--schedule", "nope"]).unwrap();
            assert!(e.exec_config().is_err(), "{command}");
            let f = Args::parse([command, "--oracle-batch", "0"]).unwrap();
            let err = f.exec_config().unwrap_err().to_string();
            assert!(err.contains("--oracle-batch"), "{command}: {err}");
        }
    }

    #[test]
    fn datagen_flag_validation() {
        // --schema is required and validated.
        let a = Args::parse(["datagen"]).unwrap();
        assert!(cmd_datagen(&a).is_err());
        let b = Args::parse(["datagen", "--schema", "nope"]).unwrap();
        assert!(cmd_datagen(&b).unwrap_err().to_string().contains("nope"));
        // Rates outside 0..=1 and bad skews are proper errors.
        let c = Args::parse(["datagen", "--schema", "soccer", "--rate", "2"]).unwrap();
        assert!(cmd_datagen(&c).unwrap_err().to_string().contains("--rate"));
        let d = Args::parse(["datagen", "--schema", "soccer", "--skew", "-1"]).unwrap();
        assert!(cmd_datagen(&d).unwrap_err().to_string().contains("--skew"));
    }

    #[test]
    fn datagen_writes_a_round_trippable_corpus_member() {
        let dir = std::env::temp_dir().join(format!("trex-datagen-cli-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let out = dir.to_str().unwrap().to_string();
        let a = Args::parse([
            "datagen", "--schema", "soccer", "--rows", "240", "--rate", "0.02", "--out", &out,
        ])
        .unwrap();
        cmd_datagen(&a).unwrap();

        // Every emitted file parses back through the consuming subcommands'
        // own readers, and the exported Algorithm 1 repairs the exported
        // dirty table back to the exported clean table.
        let read = |name: &str| std::fs::read_to_string(dir.join(name)).unwrap();
        let clean = read_csv_strings(&read("soccer_clean.csv")).unwrap();
        let dirty = read_csv_strings(&read("soccer_dirty.csv")).unwrap();
        let dcs = trex_constraints::parse_dcs(&read("soccer.dcs")).unwrap();
        let rules = RuleRepair::parse_rules(&read("soccer.rules")).unwrap();
        let truth = read("soccer_truth.tsv");
        assert_eq!(clean.num_rows(), dirty.num_rows());
        assert!(!dcs.is_empty());
        // Exact accounting: the truth file has one line per injected cell,
        // floor(cells × rate) of them.
        let expected = (clean.num_cells() as f64 * 0.02).floor() as usize;
        assert_eq!(truth.trim_end().lines().count(), expected);
        // The dirty table violates the exported constraints, and the
        // exported Algorithm 1 repairs cells (not every injected error
        // violates a constraint, so full clean-table recovery is not
        // guaranteed for an all-kinds error mix).
        let resolved: Vec<_> = dcs
            .iter()
            .map(|d| d.resolved(dirty.schema()).unwrap())
            .collect();
        assert!(!find_all_violations_par(&resolved, &dirty, 2).is_empty());
        let repaired = rules.repair(&dcs, &dirty);
        assert!(!repaired.changes.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lint_exit_codes_follow_diagnostic_severity() {
        let dir = std::env::temp_dir().join(format!("trex-lint-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("t.csv");
        std::fs::write(&csv, "Team,Year\nA,2001\nB,2002\n").unwrap();
        let write_dcs = |name: &str, text: &str| {
            let p = dir.join(name);
            std::fs::write(&p, text).unwrap();
            p.to_str().unwrap().to_string()
        };
        let table = csv.to_str().unwrap().to_string();

        // Clean program: no errors → SUCCESS, even with a warning present.
        let clean = write_dcs(
            "clean.dcs",
            "Same: !(t1.Team = t2.Team & t1.Year != t2.Year)\n\
             Dead: !(t1.Year < t2.Year & t1.Year > t2.Year)\n",
        );
        let a = Args::parse(["lint", "--table", &table, "--dcs", &clean]).unwrap();
        assert_eq!(cmd_lint(&a).unwrap(), ExitCode::SUCCESS);

        // Unknown attribute → error severity → FAILURE, in --json mode too.
        let broken = write_dcs("broken.dcs", "Bad: !(t1.Teem = t2.Teem)\n");
        let b = Args::parse(["lint", "--table", &table, "--dcs", &broken, "--json"]).unwrap();
        assert_eq!(cmd_lint(&b).unwrap(), ExitCode::FAILURE);

        // Lint shares the exec-flag validation path.
        let c = Args::parse([
            "lint",
            "--table",
            &table,
            "--dcs",
            &clean,
            "--threads",
            "999999",
        ])
        .unwrap();
        assert!(cmd_lint(&c).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn engine_selection() {
        let cfg = ExecConfig::new();
        let a = Args::parse(["repair", "--engine", "chase"]).unwrap();
        assert_eq!(load_engine(&a, &cfg).unwrap().name(), "fd-chase");
        let b = Args::parse(["repair"]).unwrap();
        assert_eq!(load_engine(&b, &cfg).unwrap().name(), "holoclean-style");
        let c = Args::parse(["repair", "--engine", "nope"]).unwrap();
        assert!(load_engine(&c, &cfg).is_err());
        let d = Args::parse(["repair", "--engine", "rules"]).unwrap();
        assert!(load_engine(&d, &cfg).is_err()); // missing --rules
    }
}
