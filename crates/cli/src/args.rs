//! Minimal flag parser (no external dependencies).
//!
//! Supports `--flag value`, `--flag=value`, and boolean `--flag`, plus one
//! leading positional argument (the subcommand). Unknown flags are errors —
//! typos should not silently select defaults.

use std::collections::HashMap;
use std::fmt;
use trex_shapley::ExecConfig;

/// Parsed command line: subcommand plus flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The first positional argument.
    pub command: Option<String>,
    flags: HashMap<String, String>,
    consumed: std::cell::RefCell<Vec<String>>,
}

/// Argument error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parse from an iterator of raw arguments (without the program name).
    pub fn parse<I, S>(raw: I) -> Result<Args, ArgError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut args = Args::default();
        let mut iter = raw.into_iter().map(Into::into).peekable();
        while let Some(tok) = iter.next() {
            if let Some(flag) = tok.strip_prefix("--") {
                let (name, value) = match flag.split_once('=') {
                    Some((n, v)) => (n.to_string(), v.to_string()),
                    None => {
                        // Boolean flag unless the next token is a value.
                        match iter.peek() {
                            Some(next) if !next.starts_with("--") => {
                                (flag.to_string(), iter.next().unwrap())
                            }
                            _ => (flag.to_string(), "true".to_string()),
                        }
                    }
                };
                if args.flags.insert(name.clone(), value).is_some() {
                    return Err(ArgError(format!("duplicate flag --{name}")));
                }
            } else if args.command.is_none() {
                args.command = Some(tok);
            } else {
                return Err(ArgError(format!("unexpected positional argument {tok:?}")));
            }
        }
        Ok(args)
    }

    /// Fetch an optional flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.consumed.borrow_mut().push(name.to_string());
        self.flags.get(name).map(String::as_str)
    }

    /// Fetch a required flag.
    pub fn require(&self, name: &str) -> Result<&str, ArgError> {
        self.get(name)
            .ok_or_else(|| ArgError(format!("missing required flag --{name}")))
    }

    /// Fetch a flag parsed as `T`, with a default.
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse::<T>()
                .map_err(|_| ArgError(format!("--{name}: cannot parse {v:?}"))),
        }
    }

    /// Boolean flag presence.
    pub fn has(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Parse the shared execution flags — `--threads`, `--schedule`,
    /// `--oracle-cap`, `--seed` — into one [`ExecConfig`].
    ///
    /// This is the single validation path for every subcommand that takes
    /// execution knobs: `--threads` absent or `0` resolves to the available
    /// parallelism (absurd counts are rejected with one error message
    /// everywhere), `--schedule` accepts `auto | player | budget | steal`
    /// (`auto` leaves the schedule unset so `Schedule::auto` picks per
    /// call), `--oracle-cap` bounds the repair-oracle memo cache (`0`
    /// disables caching), `--oracle-batch` caps how many cache-missing
    /// coalition queries each oracle dispatch carries (must be ≥ 1;
    /// identical output at any cap), `--seed` feeds the sampling seed, and
    /// the boolean `--prune-redundant` skips violation scans of
    /// statically-unviolable DCs (identical output, less work).
    /// The knob names, validation rules, and error wording all live in
    /// [`trex_shapley::exec_config_from_knobs`], which the `trex-server`
    /// request parser calls too — a bad `?threads=999999` over HTTP reads
    /// exactly like a bad `--threads 999999` here.
    pub fn exec_config(&self) -> Result<ExecConfig, ArgError> {
        trex_shapley::exec_config_from_knobs(|name| self.get(name)).map_err(ArgError)
    }

    /// After all flags are read, error on anything the command didn't use.
    pub fn reject_unknown(&self) -> Result<(), ArgError> {
        let consumed = self.consumed.borrow();
        for name in self.flags.keys() {
            if !consumed.iter().any(|c| c == name) {
                return Err(ArgError(format!("unknown flag --{name}")));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trex_shapley::Schedule;

    #[test]
    fn parses_subcommand_and_flags() {
        let a = Args::parse([
            "repair",
            "--table",
            "t.csv",
            "--engine=holoclean",
            "--train",
        ])
        .unwrap();
        assert_eq!(a.command.as_deref(), Some("repair"));
        assert_eq!(a.get("table"), Some("t.csv"));
        assert_eq!(a.get("engine"), Some("holoclean"));
        assert!(a.has("train"));
        assert!(a.reject_unknown().is_ok());
    }

    #[test]
    fn missing_required_flag() {
        let a = Args::parse(["explain"]).unwrap();
        assert!(a.require("table").is_err());
    }

    #[test]
    fn parsed_with_default() {
        let a = Args::parse(["x", "--samples", "500"]).unwrap();
        assert_eq!(a.get_parsed("samples", 100usize).unwrap(), 500);
        assert_eq!(a.get_parsed("seed", 7u64).unwrap(), 7);
        let b = Args::parse(["x", "--samples", "abc"]).unwrap();
        assert!(b.get_parsed("samples", 100usize).is_err());
    }

    #[test]
    fn duplicate_and_unknown_flags_rejected() {
        assert!(Args::parse(["x", "--a", "1", "--a", "2"]).is_err());
        let a = Args::parse(["x", "--mystery", "1"]).unwrap();
        assert!(a.reject_unknown().is_err());
    }

    #[test]
    fn extra_positional_rejected() {
        assert!(Args::parse(["x", "y"]).is_err());
    }

    #[test]
    fn exec_config_defaults_resolve_threads_and_leave_the_rest_unset() {
        let a = Args::parse(["explain"]).unwrap();
        let cfg = a.exec_config().unwrap();
        assert!(cfg.threads() >= 1, "absent --threads resolves to ≥ 1");
        assert_eq!(cfg.schedule(), None);
        assert_eq!(cfg.oracle_cap(), None);
        assert_eq!(cfg.oracle_batch(), None);
        assert_eq!(cfg.seed(), None);
        assert!(!cfg.prune_redundant());
        // Explicit 0 also means "available parallelism".
        let b = Args::parse(["explain", "--threads", "0"]).unwrap();
        assert!(b.exec_config().unwrap().threads() >= 1);
    }

    #[test]
    fn exec_config_parses_every_knob() {
        let a = Args::parse([
            "explain",
            "--threads",
            "4",
            "--schedule",
            "steal",
            "--oracle-cap",
            "4096",
            "--oracle-batch",
            "64",
            "--seed",
            "7",
            "--prune-redundant",
        ])
        .unwrap();
        let cfg = a.exec_config().unwrap();
        assert_eq!(cfg.threads(), 4);
        assert_eq!(cfg.schedule(), Some(Schedule::WorkStealing));
        assert_eq!(cfg.oracle_cap(), Some(4096));
        assert_eq!(cfg.oracle_batch(), Some(64));
        assert_eq!(cfg.seed(), Some(7));
        assert!(cfg.prune_redundant());
        for (flag, value, schedule) in [
            ("--schedule", "player", Some(Schedule::PlayerSharded)),
            ("--schedule", "budget", Some(Schedule::BudgetSplit)),
            ("--schedule", "auto", None),
        ] {
            let a = Args::parse(["explain", flag, value]).unwrap();
            assert_eq!(a.exec_config().unwrap().schedule(), schedule, "{value}");
        }
    }

    #[test]
    fn exec_config_rejects_bad_values_with_one_error_path() {
        // Absurd thread counts keep the offending value and the cap in the
        // message, for every subcommand that shares the helper.
        let a = Args::parse(["violations", "--threads", "999999"]).unwrap();
        let err = a.exec_config().unwrap_err().to_string();
        assert!(err.contains("999999"), "{err}");
        assert!(err.contains("1024"), "{err}");
        for bad in [
            vec!["x", "--threads", "many"],
            vec!["x", "--schedule", "nope"],
            vec!["x", "--oracle-cap", "lots"],
            vec!["x", "--oracle-batch", "heaps"],
            vec!["x", "--seed", "entropy"],
        ] {
            let a = Args::parse(bad.clone()).unwrap();
            assert!(a.exec_config().is_err(), "{bad:?}");
        }
        // A zero batch is rejected before it can reach the config's panic.
        let a = Args::parse(["x", "--oracle-batch", "0"]).unwrap();
        let err = a.exec_config().unwrap_err().to_string();
        assert!(err.contains(">= 1"), "{err}");
    }
}
