//! Minimal flag parser (no external dependencies).
//!
//! Supports `--flag value`, `--flag=value`, and boolean `--flag`, plus one
//! leading positional argument (the subcommand). Unknown flags are errors —
//! typos should not silently select defaults.

use std::collections::HashMap;
use std::fmt;

/// Parsed command line: subcommand plus flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The first positional argument.
    pub command: Option<String>,
    flags: HashMap<String, String>,
    consumed: std::cell::RefCell<Vec<String>>,
}

/// Argument error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parse from an iterator of raw arguments (without the program name).
    pub fn parse<I, S>(raw: I) -> Result<Args, ArgError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut args = Args::default();
        let mut iter = raw.into_iter().map(Into::into).peekable();
        while let Some(tok) = iter.next() {
            if let Some(flag) = tok.strip_prefix("--") {
                let (name, value) = match flag.split_once('=') {
                    Some((n, v)) => (n.to_string(), v.to_string()),
                    None => {
                        // Boolean flag unless the next token is a value.
                        match iter.peek() {
                            Some(next) if !next.starts_with("--") => {
                                (flag.to_string(), iter.next().unwrap())
                            }
                            _ => (flag.to_string(), "true".to_string()),
                        }
                    }
                };
                if args.flags.insert(name.clone(), value).is_some() {
                    return Err(ArgError(format!("duplicate flag --{name}")));
                }
            } else if args.command.is_none() {
                args.command = Some(tok);
            } else {
                return Err(ArgError(format!("unexpected positional argument {tok:?}")));
            }
        }
        Ok(args)
    }

    /// Fetch an optional flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.consumed.borrow_mut().push(name.to_string());
        self.flags.get(name).map(String::as_str)
    }

    /// Fetch a required flag.
    pub fn require(&self, name: &str) -> Result<&str, ArgError> {
        self.get(name)
            .ok_or_else(|| ArgError(format!("missing required flag --{name}")))
    }

    /// Fetch a flag parsed as `T`, with a default.
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse::<T>()
                .map_err(|_| ArgError(format!("--{name}: cannot parse {v:?}"))),
        }
    }

    /// Boolean flag presence.
    pub fn has(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// After all flags are read, error on anything the command didn't use.
    pub fn reject_unknown(&self) -> Result<(), ArgError> {
        let consumed = self.consumed.borrow();
        for name in self.flags.keys() {
            if !consumed.iter().any(|c| c == name) {
                return Err(ArgError(format!("unknown flag --{name}")));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_subcommand_and_flags() {
        let a = Args::parse([
            "repair",
            "--table",
            "t.csv",
            "--engine=holoclean",
            "--train",
        ])
        .unwrap();
        assert_eq!(a.command.as_deref(), Some("repair"));
        assert_eq!(a.get("table"), Some("t.csv"));
        assert_eq!(a.get("engine"), Some("holoclean"));
        assert!(a.has("train"));
        assert!(a.reject_unknown().is_ok());
    }

    #[test]
    fn missing_required_flag() {
        let a = Args::parse(["explain"]).unwrap();
        assert!(a.require("table").is_err());
    }

    #[test]
    fn parsed_with_default() {
        let a = Args::parse(["x", "--samples", "500"]).unwrap();
        assert_eq!(a.get_parsed("samples", 100usize).unwrap(), 500);
        assert_eq!(a.get_parsed("seed", 7u64).unwrap(), 7);
        let b = Args::parse(["x", "--samples", "abc"]).unwrap();
        assert!(b.get_parsed("samples", 100usize).is_err());
    }

    #[test]
    fn duplicate_and_unknown_flags_rejected() {
        assert!(Args::parse(["x", "--a", "1", "--a", "2"]).is_err());
        let a = Args::parse(["x", "--mystery", "1"]).unwrap();
        assert!(a.reject_unknown().is_err());
    }

    #[test]
    fn extra_positional_rejected() {
        assert!(Args::parse(["x", "y"]).is_err());
    }
}
