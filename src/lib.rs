//! # trex-repro — workspace facade
//!
//! Re-exports the whole T-REx reproduction under one roof so the runnable
//! examples (`examples/`) and the cross-crate integration tests (`tests/`)
//! can depend on a single crate. Library users should depend on the
//! individual crates (`trex`, `trex-table`, `trex-constraints`,
//! `trex-repair`, `trex-shapley`, `trex-datagen`) directly.

pub use trex;
pub use trex_constraints as constraints;
pub use trex_datagen as datagen;
pub use trex_repair as repair;
pub use trex_shapley as shapley;
pub use trex_table as table;
